"""A production-shaped fine-tuning loop on the functional runtime.

Combines the features a real multi-day fine-tune needs, all running
through Ratel's offload machinery:

* gradient accumulation (large effective batch through small micro-batches),
* linear-warmup + cosine-decay learning-rate schedule,
* periodic checkpointing of the out-of-core optimizer state,
* a simulated crash + bit-exact resume from the last checkpoint.

Run:  python examples/production_loop.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.runtime import (
    CrossEntropyLoss,
    GPTModel,
    LRSchedule,
    RatelOptimizer,
    load_checkpoint,
    ratel_hook,
    ratel_init,
    save_checkpoint,
)
from repro.runtime.textgen import CharTokenizer, sample_batches

GB = 1e9
CORPUS = ("all work and no play makes a dull fine-tune. " * 40)
SEQ, MICRO_BATCH, MICRO_STEPS = 16, 4, 4  # effective batch 16
TOTAL_STEPS, CHECKPOINT_EVERY = 24, 8


def build(seed: int):
    tokenizer = CharTokenizer(CORPUS)
    model = GPTModel(tokenizer.vocab_size, 32, 2, 2, SEQ, np.random.default_rng(seed))
    runtime = ratel_hook(model)
    optimizer = RatelOptimizer(model, runtime, lr=3e-3)
    return tokenizer, model, runtime, optimizer


def micro_batches(tokenizer, rng):
    ids = tokenizer.encode(CORPUS)
    return sample_batches(ids, SEQ, MICRO_BATCH, MICRO_STEPS, rng)


def main() -> None:
    loss_fn = CrossEntropyLoss()
    schedule = LRSchedule(base_lr=3e-3, warmup_steps=4, total_steps=TOTAL_STEPS)
    checkpoint = os.path.join(tempfile.gettempdir(), "ratel-production-loop.npz")

    print(f"effective batch {MICRO_BATCH * MICRO_STEPS} via {MICRO_STEPS} micro-batches; "
          f"{TOTAL_STEPS} steps, checkpoint every {CHECKPOINT_EVERY}\n")

    # --- phase 1: train, checkpoint periodically, "crash" at step 16 ----
    crash_at = 2 * CHECKPOINT_EVERY
    with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=8 * GB):
        tokenizer, model, runtime, optimizer = build(seed=7)
        rng = np.random.default_rng(0)
        for step in range(1, crash_at + 1):
            rate = schedule.apply(optimizer.cpu_adam, step)
            parts = list(micro_batches(tokenizer, rng))
            loss = runtime.train_step_accumulate(
                [(lambda a=a, b=b: loss_fn(model(a), b)) for a, b in parts]
            )
            if step % 4 == 0:
                print(f"step {step:3d}  lr {rate:.2e}  loss {loss:.3f}")
            if step % CHECKPOINT_EVERY == 0:
                save_checkpoint(checkpoint, optimizer.cpu_adam, step=step)
                print(f"         checkpoint saved at step {step}")
        print(f"\n-- simulated crash after step {crash_at} --\n")

    # --- phase 2: fresh process, resume from the checkpoint -------------
    with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=8 * GB):
        tokenizer, model, runtime, optimizer = build(seed=999)  # different init!
        resumed_step = load_checkpoint(checkpoint, model, optimizer.cpu_adam)
        print(f"resumed from step {resumed_step} (model re-built from scratch, "
              "weights restored from the optimizer's fp32 masters)")
        # Replay the data stream up to the checkpoint for exact continuity.
        rng = np.random.default_rng(0)
        for _past in range(resumed_step):
            list(micro_batches(tokenizer, rng))
        for step in range(resumed_step + 1, TOTAL_STEPS + 1):
            rate = schedule.apply(optimizer.cpu_adam, step)
            parts = list(micro_batches(tokenizer, rng))
            loss = runtime.train_step_accumulate(
                [(lambda a=a, b=b: loss_fn(model(a), b)) for a, b in parts]
            )
            if step % 4 == 0:
                print(f"step {step:3d}  lr {rate:.2e}  loss {loss:.3f}")
    os.unlink(checkpoint)
    print("\ndone: accumulation + schedule + checkpoint/resume, all through "
          "the offloaded training path")


if __name__ == "__main__":
    main()
