"""What-if analysis: which hardware upgrade helps a given fine-tune most?

Sweeps one hardware dimension at a time around the evaluation server —
GPU generation, GPU<->host PCIe bandwidth, SSD count, CPU Adam speed —
and reports the throughput response of a Ratel fine-tune.  The output
tells you where the next dollar goes: for SSD-bound 70B-class runs, more
SSDs; for compute-bound 13B-class runs, a faster GPU.

Run:  python examples/hardware_sensitivity.py [model] [batch]
      e.g. python examples/hardware_sensitivity.py 70B 16
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro.core import RatelPolicy
from repro.hardware import (
    GB,
    RTX_3090,
    RTX_4080,
    RTX_4090,
    evaluation_server,
)
from repro.models import llm, profile_model


def throughput(policy, profile, server) -> float:
    if not policy.feasible(profile, server):
        return float("nan")
    return policy.simulate(profile, server).tokens_per_s


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "70B"
    batch = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    base_server = evaluation_server()
    profile = profile_model(llm(model_name), batch)
    ratel = RatelPolicy()
    base = throughput(ratel, profile, base_server)

    print(f"{model_name} at batch {batch}; baseline {base:.0f} token/s "
          f"(4090, 768 GiB, 12 SSDs)\n")

    print("GPU generation:")
    for gpu in (RTX_3090, RTX_4080, RTX_4090):
        tput = throughput(ratel, profile, base_server.with_gpu(gpu))
        print(f"  {gpu.name:10s} {tput:8.0f} token/s  ({tput / base - 1:+.0%})")

    print("\nGPU<->host PCIe bandwidth (per direction):")
    for bw_gb in (16, 21, 32, 48):
        link = replace(base_server.gpu_link, bandwidth_per_dir=bw_gb * GB)
        server = replace(base_server, gpu_link=link)
        tput = throughput(ratel, profile, server)
        print(f"  {bw_gb:3d} GB/s  {tput:8.0f} token/s  ({tput / base - 1:+.0%})")

    print("\nnumber of SSDs:")
    for n_ssds in (3, 6, 12):
        tput = throughput(ratel, profile, base_server.with_ssds(n_ssds))
        print(f"  {n_ssds:3d}        {tput:8.0f} token/s  ({tput / base - 1:+.0%})")

    print("\nCPU Adam throughput (params/s):")
    for rate in (0.65e9, 1.3e9, 2.6e9):
        cpu = replace(base_server.cpu, adam_params_per_s=rate)
        server = replace(base_server, cpu=cpu)
        tput = throughput(ratel, profile, server)
        print(f"  {rate:.2e}  {tput:8.0f} token/s  ({tput / base - 1:+.0%})")

    print("\nreading: the dimension with the steepest response is this "
          "workload's bottleneck; flat rows are wasted money.")


if __name__ == "__main__":
    main()
