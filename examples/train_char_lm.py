"""Fine-tune a character-level GPT on real text, end to end, under Ratel.

The most complete functional demo: a small GPT trains on an embedded
corpus through the full Ratel stack — checkpointed blocks with NVMe
boundary spill, out-of-core CPU Adam, active gradient offloading — and
then *generates text*, showing the offloaded training actually learned.

Run:  python examples/train_char_lm.py [steps]
      e.g. python examples/train_char_lm.py 120
"""

from __future__ import annotations

import sys

import numpy as np

from repro.runtime import (
    CrossEntropyLoss,
    GPTModel,
    RatelOptimizer,
    ratel_hook,
    ratel_init,
)
from repro.runtime.textgen import CharTokenizer, generate, sample_batches

GB = 1e9

CORPUS = (
    "the quick brown fox jumps over the lazy dog. "
    "she sells sea shells by the sea shore. "
    "to be or not to be that is the question. "
    "a journey of a thousand miles begins with a single step. "
) * 8

SEQ, BATCH, DIM, LAYERS, HEADS = 32, 16, 64, 3, 4


def main() -> None:
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    tokenizer = CharTokenizer(CORPUS)
    corpus_ids = tokenizer.encode(CORPUS)
    rng = np.random.default_rng(0)
    loss_fn = CrossEntropyLoss()

    print(f"corpus: {len(CORPUS)} chars, vocabulary {tokenizer.vocab_size}")
    print(f"model: {LAYERS} layers x dim {DIM}; seq {SEQ}, batch {BATCH}\n")

    with ratel_init(
        gpu_capacity=2 * GB, host_capacity=2 * GB, nvme_capacity=8 * GB
    ) as context:
        model = GPTModel(
            tokenizer.vocab_size, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(1)
        )
        runtime = ratel_hook(model)
        RatelOptimizer(model, runtime, lr=3e-3)

        batches = sample_batches(corpus_ids, SEQ, BATCH, steps, rng)
        for step, (ids, targets) in enumerate(batches, 1):
            loss = runtime.train_step(lambda: loss_fn(model(ids), targets))
            if step == 1 or step % 20 == 0:
                print(f"step {step:4d}  loss {loss:.3f}")

        print("\ngreedy samples:")
        for prompt in ("the quick ", "she sells "):
            print(f"  {prompt!r} -> {generate(model, tokenizer, prompt, 40)!r}")

        moved = sum(context.manager.moved_bytes.values())
        print(f"\ntotal data moved across tiers during training: {moved / 1e6:.0f} MB")
        print(f"peak NVMe use: {context.manager.tiers['nvme'].peak_bytes / 1e6:.1f} MB")


if __name__ == "__main__":
    main()
