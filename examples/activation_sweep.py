"""Explore the activation swap/recompute tradeoff (the Fig. 9b analysis).

For a chosen model and batch size, sweeps the swapped-activation amount
``A_G2M`` across its valid range, prints the iteration-time curve with
the bottleneck resource at each point, and marks Algorithm 1's pick.
A quick way to see the three §IV-D cases move as you change the batch
size or the main-memory capacity.

Run:  python examples/activation_sweep.py [model] [batch] [main-GB]
      e.g. python examples/activation_sweep.py 13B 48 128
"""

from __future__ import annotations

import sys

from repro.core import IterationTimeModel, RatelPolicy, plan_activation_swapping
from repro.hardware import GB, GiB, evaluation_server
from repro.models import llm, profile_model


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "13B"
    batch = int(sys.argv[2]) if len(sys.argv) > 2 else 48
    main_gb = int(sys.argv[3]) if len(sys.argv) > 3 else 128

    server = evaluation_server(main_memory_bytes=main_gb * GiB)
    profile = profile_model(llm(model_name), batch)
    ratel = RatelPolicy()
    model = IterationTimeModel(profile, ratel.hardware_profile(profile, server))
    plan = plan_activation_swapping(model)

    print(
        f"{model_name} model, batch {batch}, {main_gb} GB DRAM "
        f"(activation budget in DRAM: {model.hardware.mem_avail_main / GB:.0f} GB)"
    )
    print(f"A_all = {profile.activation_bytes_total / GB:.0f} GB, "
          f"A_interBlock = {profile.inter_block_bytes / GB:.1f} GB\n")

    print(f"{'A_G2M (GB)':>11s} {'to SSD':>8s} {'T_iter':>7s}  bottlenecks (fwd/bwd)")
    lo = profile.inter_block_bytes
    hi = profile.activation_bytes_total
    n_points = 15
    for i in range(n_points):
        a = lo + (hi - lo) * i / (n_points - 1)
        estimate = model.estimate(a)
        marker = " <-- Algorithm 1" if abs(a - plan.a_g2m) < (hi - lo) / (2 * n_points) else ""
        print(
            f"{a / GB:11.1f} {estimate.a_to_ssd / GB:8.1f} {estimate.total:7.1f}"
            f"  {estimate.forward.bottleneck}/{estimate.backward.bottleneck}{marker}"
        )

    print(f"\nAlgorithm 1 chose A* = {plan.a_g2m / GB:.1f} GB "
          f"({plan.case.name}), predicted T_iter = {plan.t_iter:.1f} s")
    print(f"segments swapped (by offloading benefit): {', '.join(plan.swapped)}")


if __name__ == "__main__":
    main()
