"""Fine-tune large diffusion (DiT) backbones: Ratel vs Fast-DiT (§V-H).

Walks the Table VI DiT model family at 512x512, asks which models each
system can train on an RTX 4090 and at what throughput/batch, and shows
Ratel's planned data movement for the largest model.

Run:  python examples/diffusion_finetune.py
"""

from __future__ import annotations

from repro.baselines import FastDiTPolicy
from repro.core import RatelPolicy
from repro.hardware import GB, evaluation_server
from repro.models import DIT_PRESETS, profile_model

BATCHES = (1, 2, 4, 8, 16, 32, 64, 128)


def best_run(policy, config, server):
    """Largest-throughput feasible (batch, result) or None."""
    best = None
    for batch in BATCHES:
        profile = profile_model(config, batch)
        if not policy.feasible(profile, server):
            continue
        result = policy.simulate(profile, server, check=False)
        if best is None or result.samples_per_s > best[1].samples_per_s:
            best = (batch, result)
    return best


def main() -> None:
    server = evaluation_server()
    fastdit = FastDiTPolicy()
    ratel = RatelPolicy()

    print("DiT fine-tuning at 512x512 on an RTX 4090 (images/s):\n")
    print(f"{'model':>6s} {'params':>8s}  {'Fast-DiT':>14s}  {'Ratel':>14s}")
    for name, config in DIT_PRESETS.items():
        row = [f"{name:>6s}", f"{config.size_billions:7.2f}B"]
        for policy in (fastdit, ratel):
            best = best_run(policy, config, server)
            if best is None:
                row.append(f"{'OOM':>14s}")
            else:
                batch, result = best
                row.append(f"{result.samples_per_s:7.1f} (bs={batch:>3d})")
        print("  ".join(row))

    largest = DIT_PRESETS["40B"]
    profile = profile_model(largest, 32)
    plan = ratel.plan(profile, server)
    print(f"\nRatel's plan for the 40B DiT at batch 32:")
    print(f"  activations total {profile.activation_bytes_total / GB:.0f} GB; "
          f"swap {plan.a_g2m / GB:.0f} GB "
          f"(main {plan.a_to_main / GB:.0f} GB / SSD {plan.a_to_ssd / GB:.0f} GB), "
          f"case {plan.case.name}")
    print(f"  model states {profile.states.total / GB:.0f} GB stream through the SSD "
          f"array every iteration via active gradient offloading")


if __name__ == "__main__":
    main()
