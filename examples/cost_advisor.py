"""Budget advisor: the cheapest machine that fine-tunes your model.

Given a target model size, searches the commodity-server design space
(GPU model, GPU count, main memory, SSD count) for configurations that
can run it under Ratel, then ranks them by cost-effectiveness (token/s
per $1000, the paper's Fig. 13 metric) — the practical question the
paper's cost analysis answers for a single point.

Run:  python examples/cost_advisor.py [model] [global-batch]
      e.g. python examples/cost_advisor.py 70B 32
"""

from __future__ import annotations

import sys

from repro.analysis import cost_effectiveness
from repro.core import RatelPolicy
from repro.core.memory_model import InfeasibleError
from repro.core.multi_gpu import per_gpu_view, run_data_parallel
from repro.hardware import GiB, RTX_3090, RTX_4080, RTX_4090, evaluation_server
from repro.models import llm, profile_model

GPUS = (RTX_4080, RTX_3090, RTX_4090)
GPU_COUNTS = (1, 2, 4)
MEMORY_GB = (128, 256, 512)
SSD_COUNTS = (3, 6, 12)

#: DRAM price per the evaluation server's DDR4 modules (approximate).
DRAM_USD_PER_GB = 3.0


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "70B"
    global_batch = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    config = llm(model_name)
    ratel = RatelPolicy()

    rows = []
    for gpu in GPUS:
        for n_gpus in GPU_COUNTS:
            if global_batch % n_gpus != 0:
                continue
            for mem_gb in MEMORY_GB:
                for n_ssds in SSD_COUNTS:
                    server = evaluation_server(
                        gpu=gpu,
                        n_gpus=n_gpus,
                        main_memory_bytes=mem_gb * GiB,
                        n_ssds=n_ssds,
                    )
                    profile = profile_model(config, global_batch // n_gpus)
                    if not ratel.feasible(profile, per_gpu_view(server)):
                        continue
                    try:
                        run = run_data_parallel(ratel, config, global_batch, server)
                    except InfeasibleError:
                        continue
                    price = server.price_usd + DRAM_USD_PER_GB * mem_gb
                    point = cost_effectiveness(ratel.name, server, run.tokens_per_s)
                    rows.append(
                        (
                            run.tokens_per_s / (price / 1000.0),
                            f"{n_gpus}x {gpu.name}",
                            mem_gb,
                            n_ssds,
                            price,
                            run.tokens_per_s,
                        )
                    )

    if not rows:
        print(f"no feasible configuration found for {model_name} at batch {global_batch}")
        return

    rows.sort(reverse=True)
    print(f"configurations able to fine-tune {model_name} at global batch {global_batch},")
    print("ranked by cost-effectiveness:\n")
    print(f"{'tok/s/$k':>9s}  {'GPUs':<14s} {'DRAM':>6s} {'SSDs':>5s} {'price':>9s} {'tok/s':>7s}")
    for ce, gpus, mem_gb, n_ssds, price, tput in rows[:12]:
        print(f"{ce:9.1f}  {gpus:<14s} {mem_gb:>4d}GB {n_ssds:>5d} ${price:>8,.0f} {tput:>7.0f}")
    best = rows[0]
    print(f"\nbest value: {best[1]}, {best[2]} GB DRAM, {best[3]} SSDs "
          f"-> {best[5]:.0f} token/s at ${best[4]:,.0f}")


if __name__ == "__main__":
    main()
