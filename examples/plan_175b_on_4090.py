"""Plan the paper's headline run: a 175B model on one RTX 4090 + 256 GB.

Uses the capacity planner and the Eq. 1-8 iteration-time model to answer,
before committing any hardware:

* does the workload fit (GPU / main memory / SSD, tier by tier)?
* what does Algorithm 1 decide (swap amount, SSD overflow, recompute)?
* what iteration time and throughput should the machine deliver, and
  which resource is the bottleneck in each stage?
* how do the baselines fare on the same box?

Run:  python examples/plan_175b_on_4090.py [model-size] [batch]
      e.g. python examples/plan_175b_on_4090.py 175B 8
"""

from __future__ import annotations

import sys

from repro.baselines import ColossalAIPolicy, ZeroInfinityPolicy, ZeroOffloadPolicy
from repro.core import IterationTimeModel, RatelPolicy, check_feasible
from repro.hardware import GB, GiB, evaluation_server, fmt_bytes
from repro.models import llm, profile_model


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "175B"
    batch = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    server = evaluation_server(main_memory_bytes=256 * GiB)
    config = llm(model_name)
    profile = profile_model(config, batch)
    ratel = RatelPolicy()

    print(f"workload: {config.name} model ({config.size_billions:.0f}B params), batch {batch}")
    print(f"server:   RTX 4090 (24 GB), 256 GB DRAM, 12x P5510 SSDs\n")

    print("tensor inventory per iteration:")
    print(f"  model states (P32+OS32+G16+P16): {fmt_bytes(profile.states.total)}")
    print(f"  activations (A_all):             {fmt_bytes(profile.activation_bytes_total)}")
    print(f"  inter-block subset:              {fmt_bytes(profile.inter_block_bytes)}\n")

    print("feasibility per system:")
    for policy in (ratel, ZeroInfinityPolicy(), ZeroOffloadPolicy(), ColossalAIPolicy()):
        report = check_feasible(policy, profile, server)
        if report.feasible:
            print(f"  {policy.name:15s} fits")
        else:
            missing = ", ".join(
                f"{tier} short {fmt_bytes(byte)}" for tier, byte in report.shortfalls.items()
            )
            print(f"  {policy.name:15s} FAILS ({missing})")
    print()

    plan = ratel.plan(profile, server)
    print("Ratel's holistic activation plan (Algorithm 1):")
    print(f"  case:              {plan.case.name}")
    print(f"  A_G2M swapped:     {fmt_bytes(plan.a_g2m)}")
    print(f"    -> main memory:  {fmt_bytes(plan.a_to_main)}")
    print(f"    -> SSD overflow: {fmt_bytes(plan.a_to_ssd)}")
    recompute_pct = 100 * plan.estimate.recompute_flops / profile.forward_flops
    print(f"  recompute:         {recompute_pct:.0f}% of a forward pass\n")

    model = IterationTimeModel(profile, ratel.hardware_profile(profile, server))
    estimate = model.estimate(plan.a_g2m)
    print("predicted stage times (analytic Eq. 1-5):")
    for stage_name, stage in (("forward", estimate.forward), ("backward", estimate.backward)):
        parts = ", ".join(f"{k}={v:.1f}s" for k, v in sorted(stage.components.items()))
        print(f"  {stage_name:8s} {stage.total:6.1f} s  (bottleneck: {stage.bottleneck}; {parts})")

    result = ratel.simulate(profile, server)
    print("\nsimulated iteration (discrete-event engine):")
    print(f"  forward {result.forward_time:.1f} s + backward {result.backward_time:.1f} s "
          f"= {result.iteration_time:.1f} s/iteration")
    print(f"  throughput: {result.tokens_per_s:.0f} token/s "
          f"({result.achieved_tflops:.0f} TFLOPS, GPU busy {100 * result.gpu_busy_fraction:.0f}%)")
    tokens_per_day = result.tokens_per_s * 86400
    print(f"  ~{tokens_per_day / 1e6:.0f}M tokens/day on a $1600 GPU")


if __name__ == "__main__":
    main()
