"""Quickstart: fine-tune a tiny GPT with Ratel's functional runtime.

Demonstrates the paper's Fig.-4 API on the NumPy substrate:

1. ``ratel_init`` establishes the GPU/host/NVMe storage hierarchy;
2. ``ratel_hook`` injects checkpoint-and-offload forwards into the model;
3. ``RatelOptimizer`` arms active gradient offloading — so there is no
   ``optimizer.step()`` in the loop: parameters are already updated when
   ``backward()`` returns.

The script then re-runs the identical workload with a *deferred*
optimizer stage and checks the resulting parameters are bit-identical —
the paper's "synchronous updates, no staleness" property — and prints
the real byte traffic across the tiers.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.runtime import (
    CrossEntropyLoss,
    GPTModel,
    RatelOptimizer,
    ratel_hook,
    ratel_init,
)

GB = 1e9

VOCAB, DIM, LAYERS, HEADS, SEQ, BATCH = 101, 32, 4, 4, 16, 8
STEPS = 5


def make_batch(rng: np.random.Generator):
    """A toy language-modelling batch (random tokens, next-token targets)."""
    ids = rng.integers(0, VOCAB, size=(BATCH, SEQ))
    targets = np.roll(ids, -1, axis=1)
    return ids, targets


def train(active_offload: bool) -> tuple[list[float], dict[str, np.ndarray], dict]:
    """Train for STEPS iterations; returns losses, params and traffic."""
    rng = np.random.default_rng(0)
    loss_fn = CrossEntropyLoss()
    with ratel_init(
        gpu_capacity=1 * GB,
        host_capacity=1 * GB,
        nvme_capacity=4 * GB,
        active_offload=active_offload,
    ) as context:
        model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(1234))
        runtime = ratel_hook(model)
        RatelOptimizer(model, runtime, lr=1e-2)

        losses = []
        for _step in range(STEPS):
            ids, targets = make_batch(rng)
            losses.append(runtime.train_step(lambda: loss_fn(model(ids), targets)))
        params = {name: p.data.copy() for name, p in model.named_parameters()}
        traffic = {
            "gpu->host (G16 + checkpoints out)": context.manager.traffic("gpu", "host"),
            "host->gpu (P16 + checkpoints back)": context.manager.traffic("host", "gpu"),
            "host->nvme (states + spill)": context.manager.traffic("host", "nvme"),
            "nvme->host (states + spill)": context.manager.traffic("nvme", "host"),
        }
    return losses, params, traffic


def main() -> None:
    print(f"model: {LAYERS} layers, dim {DIM}, vocab {VOCAB}, batch {BATCH}")
    active_losses, active_params, traffic = train(active_offload=True)
    deferred_losses, deferred_params, _ = train(active_offload=False)

    print("\nloss curve (active gradient offloading):")
    for step, loss in enumerate(active_losses, 1):
        print(f"  step {step}: {loss:.4f}")

    worst = max(
        float(np.abs(active_params[name] - deferred_params[name]).max())
        for name in active_params
    )
    print(f"\nactive vs deferred optimizer: max parameter diff = {worst:.2e}")
    assert worst == 0.0, "active gradient offloading must introduce no staleness"
    assert active_losses == deferred_losses
    print("  -> bit-identical: active gradient offloading introduces no staleness")

    print("\nreal data movement across the storage hierarchy:")
    for link, nbytes in traffic.items():
        print(f"  {link:38s} {nbytes / 1e6:8.2f} MB")


if __name__ == "__main__":
    main()
