"""Bench: the functional runtime's training step (offload machinery cost).

Not a paper figure — this times the NumPy substrate itself: a full
forward/backward/active-optimizer iteration of a small GPT with
checkpointed blocks, NVMe spill and per-parameter CPU-Adam handlers.
"""

import numpy as np

from repro.runtime import (
    CrossEntropyLoss,
    GPTModel,
    RatelOptimizer,
    ratel_hook,
    ratel_init,
)

GB = 1e9


def test_runtime_train_step(benchmark):
    rng = np.random.default_rng(0)
    loss_fn = CrossEntropyLoss()
    with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=8 * GB):
        model = GPTModel(101, 32, 4, 4, 32, np.random.default_rng(1))
        runtime = ratel_hook(model)
        RatelOptimizer(model, runtime, lr=1e-3)
        ids = rng.integers(0, 101, size=(8, 32))
        targets = np.roll(ids, -1, axis=1)

        def step():
            return runtime.train_step(lambda: loss_fn(model(ids), targets))

        loss = benchmark(step)
        assert loss > 0
