"""Bench: the sweep orchestrator vs the seed's sequential evaluation loop.

Times the Fig. 5a grid (4 systems x 5 batches of the 13B model on the
RTX 4090) four ways:

* ``seed_sequential`` — the pre-runner code path: one
  ``feasible``/``simulate`` round-trip per point, no memoization;
* ``runner_cold``     — the same grid through a fresh :class:`Sweep`;
* ``runner_warm``     — the grid again on the warm cache (the acceptance
  bar: >= 3x faster than the seed path, numerically identical);
* ``runner_process``  — a fresh sweep fanned out across a process pool.

The timings land in ``benchmarks/results/BENCH_runner.json`` so the
speedups are diffable across commits.  Runs under the ``bench_smoke``
marker (the fast "bench-smoke" tier): plain ``time.perf_counter``, no
pytest-benchmark dependency.
"""

from __future__ import annotations

import math
import time

import pytest

from repro.experiments.fig5_throughput import sweep_points
from repro.models.profile import profile_model
from repro.runner import Sweep

from conftest import write_bench_json

#: The warm-cache acceptance bar relative to the seed's sequential loop.
MIN_WARM_SPEEDUP = 3.0


def _seed_sequential(points) -> list[float]:
    """The pre-runner evaluation loop: per-point feasibility + simulation."""
    values = []
    for point in points:
        profile = profile_model(point.config, point.batch_size)
        if not point.policy.feasible(profile, point.server):
            values.append(float("nan"))
            continue
        values.append(point.policy.simulate(profile, point.server).tokens_per_s)
    return values


def _tokens(outcomes) -> list[float]:
    return [o.tokens_per_s if o.feasible else float("nan") for o in outcomes]


def _same(a: list[float], b: list[float]) -> bool:
    return all(
        (math.isnan(x) and math.isnan(y)) or x == y for x, y in zip(a, b)
    ) and len(a) == len(b)


@pytest.mark.bench_smoke
def test_runner_vs_sequential():
    points = sweep_points()

    # Planning memoizes on the policy instances; rebuild the grid per
    # variant so each timing starts from genuinely cold policies.
    started = time.perf_counter()
    seed_values = _seed_sequential(sweep_points())
    seed_s = time.perf_counter() - started
    profile_model.cache_clear()

    sweep = Sweep()
    started = time.perf_counter()
    cold = _tokens(sweep.run(points))
    cold_s = time.perf_counter() - started

    started = time.perf_counter()
    warm = _tokens(sweep.run(points))
    warm_s = time.perf_counter() - started

    profile_model.cache_clear()
    started = time.perf_counter()
    parallel = _tokens(Sweep(executor="process", max_workers=4).run(sweep_points()))
    parallel_s = time.perf_counter() - started

    assert _same(seed_values, cold)
    assert _same(seed_values, warm)
    assert _same(seed_values, parallel)

    warm_speedup = seed_s / warm_s if warm_s > 0 else float("inf")
    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        f"warm cache only {warm_speedup:.1f}x over the sequential seed path"
    )

    payload = {
        "grid_points": len(points),
        "seed_sequential_s": seed_s,
        "runner_cold_s": cold_s,
        "runner_warm_s": warm_s,
        "runner_process_s": parallel_s,
        "warm_speedup_vs_seed": warm_speedup,
        "cache": {
            "hits": sweep.stats.hits,
            "misses": sweep.stats.misses,
        },
    }
    write_bench_json("runner", payload)
    print(
        f"\nrunner bench: seed {seed_s:.2f}s, cold {cold_s:.2f}s, "
        f"warm {warm_s:.4f}s ({warm_speedup:.0f}x), process {parallel_s:.2f}s"
    )
