"""Bench: design-choice ablations (prefetch depth, SSD efficiency,
optimizer window, GPU occupancy model) — see DESIGN.md §5."""

from repro.experiments import ablations

from conftest import run_once


def test_ablation_prefetch_depth(benchmark, emit):
    emit(run_once(benchmark, ablations.run_prefetch_depth))


def test_ablation_ssd_efficiency(benchmark, emit):
    emit(run_once(benchmark, ablations.run_ssd_efficiency))


def test_ablation_optimizer_window(benchmark, emit):
    emit(run_once(benchmark, ablations.run_optimizer_window))


def test_ablation_occupancy_model(benchmark, emit):
    emit(run_once(benchmark, ablations.run_occupancy_model))
