"""Bench: regenerate Fig. 1 (stage breakdown, ZeRO-Infinity / G10 / Ratel)."""

from repro.experiments import fig1_breakdown

from conftest import run_once


def test_fig1_breakdown(benchmark, emit):
    emit(run_once(benchmark, fig1_breakdown.run))


def test_fig1_traffic_accounting(benchmark, emit):
    from repro.experiments import traffic_report

    emit(run_once(benchmark, traffic_report.run))
