"""Bench: regenerate Fig. 9 + Table V (activation management strategies)."""

from repro.experiments import fig9_act_strategy

from conftest import run_once


def test_fig9a_and_table_v(benchmark, emit):
    throughput, batches = run_once(benchmark, fig9_act_strategy.run_fig9a)
    emit([throughput, batches])


def test_fig9b_iteration_time_curves(benchmark, emit):
    emit(run_once(benchmark, fig9_act_strategy.run_fig9b))
