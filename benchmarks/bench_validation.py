"""Bench: internal consistency — analytic Eq. 1-5 vs the DES engine."""

from repro.core import run_agreement_report
from repro.hardware import EVALUATION_SERVER

from conftest import run_once


def test_analytic_vs_engine_agreement(benchmark, emit):
    emit(run_once(benchmark, lambda: run_agreement_report(EVALUATION_SERVER)))


def test_algorithm1_star_quality(benchmark, emit):
    from repro.core import run_star_quality_report
    from repro.hardware import GiB, evaluation_server

    server = evaluation_server(main_memory_bytes=128 * GiB)
    emit(run_once(benchmark, lambda: run_star_quality_report(server)))
