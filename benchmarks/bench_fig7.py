"""Bench: regenerate Fig. 7 (active gradient offloading ablation)."""

from repro.experiments import fig7_gradient_offload

from conftest import run_once


def test_fig7a_13b(benchmark, emit):
    emit(run_once(benchmark, fig7_gradient_offload.run_fig7a))


def test_fig7b_175b(benchmark, emit):
    emit(run_once(benchmark, fig7_gradient_offload.run_fig7b))
