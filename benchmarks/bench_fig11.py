"""Bench: regenerate Fig. 11 (multi-GPU throughput vs ZeRO-Infinity)."""

from repro.experiments import fig11_multi_gpu

from conftest import run_once


def test_fig11_all_panels(benchmark, emit):
    emit(run_once(benchmark, fig11_multi_gpu.run))
