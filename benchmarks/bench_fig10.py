"""Bench: regenerate Fig. 10 (effect of the number of SSDs)."""

from repro.experiments import fig10_ssd_scaling

from conftest import run_once


def test_fig10a_135b_scaling(benchmark, emit):
    emit(run_once(benchmark, fig10_ssd_scaling.run_fig10a))


def test_fig10b_13b_tflops(benchmark, emit):
    emit(run_once(benchmark, fig10_ssd_scaling.run_fig10b))
