"""Shared helpers for the benchmark harness.

Each ``bench_fig*.py`` regenerates one of the paper's tables/figures via
``pytest-benchmark`` (timing the whole experiment) and emits the rendered
rows both to stdout (run with ``-s`` to see them) and to
``benchmarks/results/<experiment>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

from repro import runner
from repro.analysis.report import ExperimentResult

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(autouse=True)
def fresh_runner():
    """Drop the shared sweep around each benchmark.

    The experiment harnesses memoize through :func:`repro.runner.default_sweep`;
    a warm cache from a previous benchmark would turn a timing run into a
    cache-lookup run.
    """
    runner.reset()
    yield
    runner.reset()


@pytest.fixture
def emit():
    """Print an ExperimentResult (or a list of them) and persist it."""

    def _emit(outcome) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        results = [outcome] if isinstance(outcome, ExperimentResult) else list(outcome)
        for result in results:
            text = result.render()
            print("\n" + text)
            path = os.path.join(RESULTS_DIR, f"{result.experiment}.txt")
            with open(path, "w") as handle:
                handle.write(text + "\n")

    return _emit


def run_once(benchmark, fn):
    """Benchmark an experiment with a single timed round.

    The experiments are deterministic simulations; one round measures the
    full regeneration cost without repeating multi-second sweeps.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
