"""Shared helpers for the benchmark harness.

Each ``bench_fig*.py`` regenerates one of the paper's tables/figures via
``pytest-benchmark`` (timing the whole experiment) and emits the rendered
rows both to stdout (run with ``-s`` to see them) and to
``benchmarks/results/<experiment>.txt`` for EXPERIMENTS.md.

Every bench module additionally gets a machine-readable
``benchmarks/results/BENCH_<name>.json``: an autouse fixture wall-clocks
each test and the session-finish hook merges the ``_s`` timings through
:func:`write_bench_json` — the single writer all explicit payloads
(``bench_runner``/``bench_obs``/``bench_faults``) also route through, so
``diff_bench.py`` has one uniform corpus to gate on.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import runner
from repro.analysis.report import ExperimentResult

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Wall-clock per test, ``{module name: {test name: seconds}}``, flushed
#: to ``BENCH_<module>.json`` at session finish.
_WALL_TIMES: dict[str, dict[str, float]] = {}


def _merge(base: dict, update: dict) -> dict:
    """Recursive dict merge (``update`` wins on scalar conflicts)."""
    merged = dict(base)
    for key, value in update.items():
        if isinstance(value, dict) and isinstance(merged.get(key), dict):
            merged[key] = _merge(merged[key], value)
        else:
            merged[key] = value
    return merged


def write_bench_json(name: str, payload: dict) -> str:
    """Merge ``payload`` into ``benchmarks/results/BENCH_<name>.json``.

    Existing keys the payload does not mention survive (so a ``-m
    bench_smoke`` subset run does not erase the full run's numbers, and
    the wall-time hook does not erase a module's explicit payload).
    Returns the path written.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    existing: dict = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict):
                existing = loaded
        except (json.JSONDecodeError, OSError):
            pass
    with open(path, "w") as handle:
        json.dump(_merge(existing, payload), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@pytest.fixture(autouse=True)
def _bench_wall_time(request):
    """Record each bench test's wall time for ``BENCH_<module>.json``."""
    started = time.perf_counter()
    yield
    module = request.node.module.__name__
    if not module.startswith("bench_"):
        return
    name = module[len("bench_"):]
    test = request.node.name.replace("[", "_").replace("]", "")
    _WALL_TIMES.setdefault(name, {})[f"{test}_s"] = time.perf_counter() - started


def pytest_sessionfinish(session):
    for name, timings in _WALL_TIMES.items():
        write_bench_json(name, {"tests": timings})


@pytest.fixture(autouse=True)
def fresh_runner():
    """Drop the shared sweep around each benchmark.

    The experiment harnesses memoize through :func:`repro.runner.default_sweep`;
    a warm cache from a previous benchmark would turn a timing run into a
    cache-lookup run.
    """
    runner.reset()
    yield
    runner.reset()


@pytest.fixture
def emit():
    """Print an ExperimentResult (or a list of them) and persist it."""

    def _emit(outcome) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        results = [outcome] if isinstance(outcome, ExperimentResult) else list(outcome)
        for result in results:
            text = result.render()
            print("\n" + text)
            path = os.path.join(RESULTS_DIR, f"{result.experiment}.txt")
            with open(path, "w") as handle:
                handle.write(text + "\n")

    return _emit


def run_once(benchmark, fn):
    """Benchmark an experiment with a single timed round.

    The experiments are deterministic simulations; one round measures the
    full regeneration cost without repeating multi-second sweeps.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
