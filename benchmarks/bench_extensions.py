"""Bench: extension experiments beyond the paper's figures."""

from repro.experiments import ext_seq_len

from conftest import run_once


def test_ext_sequence_length(benchmark, emit):
    emit(run_once(benchmark, ext_seq_len.run))
