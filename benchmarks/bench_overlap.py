"""Bench: the stall-free optimizer frontier (``ext_overlap``).

One payload lands in ``benchmarks/results/BENCH_overlap.json``: the
simulated per-preset iteration times for synchronous Ratel vs the
ZenFlow/GreedySnake reshapes of the same plan, the realized speedups,
and the runtime fidelity numbers (measured loss divergence and the
bit-exactness flags for K=0 async and overlap).  The frontier also
lands as a standalone scatter plot (speedup vs loss divergence, one
labelled point per mode) in ``ext_overlap_frontier.svg`` next to the
rendered table — same palette as the HTML run reports, no JS, no CDN.  The simulated seconds
move whenever hardware calibration or the overlap model is retuned, so
the diff gate reads them through the ``BENCH_overlap.json:*`` allowlist
entry; the bench's own assertions — both stall-free modes beat sync,
K=0/overlap bit-exact — gate the properties that matter.

Runs under the ``bench_smoke`` marker.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments import ext_overlap
from repro.obs.html import write_frontier_svg

from conftest import RESULTS_DIR, run_once, write_bench_json

#: The whole frontier is a handful of cached simulations plus four tiny
#: training runs; a minute of wall is already pathological.
MAX_WALL_S = 120.0


@pytest.mark.bench_smoke
def test_overlap_frontier(benchmark, emit):
    started = time.perf_counter()
    sim, frontier = run_once(benchmark, ext_overlap.run)
    wall = time.perf_counter() - started
    emit([sim, frontier])

    sim_rows = {row[0]: row[1:4] for row in sim.rows}
    modes = {row[0]: row[1:] for row in frontier.rows}
    write_frontier_svg(
        os.path.join(RESULTS_DIR, "ext_overlap_frontier.svg"),
        [(mode, speedup, divergence) for mode, (speedup, divergence, *_rest) in modes.items()],
        title="stall-free optimizer frontier (13B batch 8, 4090/12ssd)",
        x_label="simulated speedup vs sync Ratel",
        y_label="max |loss − sync oracle|",
    )
    write_bench_json(
        "overlap",
        {
            "sim_s_per_iter": {
                server: {
                    "sync": sync,
                    "zenflow": zen,
                    "greedysnake": snake,
                }
                for server, (sync, zen, snake) in sim_rows.items()
            },
            "frontier": {
                mode: {
                    "speedup": speedup,
                    "max_loss_divergence": divergence,
                    "bit_exact": bit_exact == "yes",
                    "max_staleness_steps": staleness,
                }
                for mode, (speedup, divergence, bit_exact, staleness) in modes.items()
            },
            "wall_s": wall,
        },
    )

    # The acceptance gate: both stall-free modes beat synchronous Ratel
    # on at least one preset (in fact every preset they fit on).
    beats_async = [s for s, (sync, zen, _g) in sim_rows.items() if zen == zen and zen < sync]
    beats_overlap = [s for s, (sync, _z, snake) in sim_rows.items() if snake == snake and snake < sync]
    assert beats_async, "ZenFlow beat sync Ratel on no preset"
    assert beats_overlap, "GreedySnake beat sync Ratel on no preset"

    # Fidelity: zero algorithmic cost where the design promises it.
    assert modes["async K=0"][2] == "yes"
    assert modes["overlap (GreedySnake)"][2] == "yes"
    assert modes["async K=2 (ZenFlow)"][1] > 0  # measured, not argued

    assert wall < MAX_WALL_S, f"frontier took {wall:.1f} s (bar {MAX_WALL_S:.0f} s)"
