"""Bench: the fleet scheduler drill and the scheduling engine's overhead.

Two numbers land in ``benchmarks/results/BENCH_fleet.json``:

* **drill scores** — the standard bursty trace (40 jobs, 4 nodes,
  mid-trace 4090 degradation) under FIFO and SJF, with the headline
  fleet metrics (makespan, P99/P50 latency, utilization, requeues) per
  scheduler.  These are *simulated* seconds — deterministic, so any
  change is a real behavior change; the diff gate reads them through the
  ``BENCH_fleet.json:*`` allowlist entry because retuning the trace or a
  scheduler default legitimately moves them.
* **engine overhead** — wall-clock to schedule a 400-job trace against
  a stub oracle (no simulation in the loop), i.e. the cost of the event
  loop + scheduler decisions themselves.  Bar: the whole schedule in
  well under simulated real time.

Runs under the ``bench_smoke`` marker; the drill asserts the two
acceptance properties (SJF beats FIFO on P99; the degradation forces at
least one migration/requeue) so CI's fleet-smoke job fails loudly if a
scheduler change regresses them.
"""

from __future__ import annotations

import time

import pytest

from repro.fleet import Fleet, bursty_trace, run_bursty_drill, standard_fleet_nodes

from conftest import write_bench_json

#: Generous bar for scheduling 400 jobs with a stub oracle (seconds).
MAX_ENGINE_WALL_S = 5.0

_DRILL_KEYS = (
    "makespan_s",
    "p99_latency_s",
    "p50_latency_s",
    "mean_wait_s",
    "utilization",
    "migrations",
    "requeues",
    "preemptions",
    "completed",
    "rejected",
)


class _StubOracle:
    """Constant-time cost answers: benches the engine, not the simulator."""

    _SPEED = {"box-3090": 2.5, "box-4080": 1.8, "box-4090": 1.0, "dgx-a100": 0.4}
    _BASE = {"30B": 30.0, "13B": 8.0, "6B": 2.0}

    def feasible(self, spec, node):
        if spec.hardware_class is not None:
            return spec.hardware_class == node.hardware_class
        return True

    def iteration_time(self, spec, node):
        sag = 3.0 if (node.failed_ssds or node.bw_sag < 1.0) else 1.0
        return self._BASE.get(spec.model, 5.0) * self._SPEED.get(node.name, 1.0) * sag

    def service_time(self, spec, node, iterations):
        return iterations * self.iteration_time(spec, node)

    def needs(self, spec, node):
        return None


@pytest.mark.bench_smoke
def test_bursty_drill_scores_fifo_vs_sjf():
    started = time.perf_counter()
    outcomes = {
        name: run_bursty_drill(name, degrade=True) for name in ("fifo", "sjf")
    }
    wall = time.perf_counter() - started

    payload = {
        "jobs": outcomes["fifo"].metrics["jobs"],
        "nodes": outcomes["fifo"].n_nodes,
        "drill_wall_s": wall,
    }
    for name, outcome in outcomes.items():
        payload[name] = {key: outcome.metrics[key] for key in _DRILL_KEYS}
    write_bench_json("fleet", payload)

    fifo_p99 = outcomes["fifo"].metrics["p99_latency_s"]
    sjf_p99 = outcomes["sjf"].metrics["p99_latency_s"]
    print(
        f"\nfleet drill: P99 fifo {fifo_p99:.0f} s vs sjf {sjf_p99:.0f} s "
        f"({fifo_p99 / sjf_p99:.1f}x), "
        f"requeues fifo={outcomes['fifo'].metrics['requeues']} "
        f"sjf={outcomes['sjf'].metrics['requeues']} ({wall:.1f} s wall)"
    )

    assert sjf_p99 < fifo_p99, (
        f"oracle-guided SJF should beat FIFO on P99 latency "
        f"(sjf {sjf_p99:.0f} s vs fifo {fifo_p99:.0f} s)"
    )
    for name, outcome in outcomes.items():
        moved = outcome.metrics["migrations"] + outcome.metrics["requeues"]
        assert moved >= 1, f"{name}: degradation should force a migration/requeue"


@pytest.mark.bench_smoke
def test_engine_overhead_scales_to_hundreds_of_jobs():
    n_jobs = 400
    specs = bursty_trace(n_jobs, seed=11)
    started = time.perf_counter()
    fleet = Fleet(standard_fleet_nodes(), "sjf", oracle=_StubOracle())
    for spec in specs:
        fleet.submit(spec)
    outcome = fleet.drain()
    wall = time.perf_counter() - started

    assert outcome.metrics["completed"] + outcome.metrics["rejected"] == n_jobs
    write_bench_json(
        "fleet",
        {
            "engine": {
                "jobs": n_jobs,
                "engine_wall_s": wall,
                "jobs_per_s": n_jobs / wall if wall > 0 else float("inf"),
            }
        },
    )
    print(f"\nfleet engine: {n_jobs} jobs scheduled in {wall:.2f} s wall")
    assert wall < MAX_ENGINE_WALL_S, (
        f"scheduling {n_jobs} stub jobs took {wall:.2f} s "
        f"(bar {MAX_ENGINE_WALL_S:.0f} s)"
    )
