"""Bench: the fleet scheduler drill and the scheduling engine's overhead.

Two numbers land in ``benchmarks/results/BENCH_fleet.json``:

* **drill scores** — the standard bursty trace (40 jobs, 4 nodes,
  mid-trace 4090 degradation) under FIFO and SJF, with the headline
  fleet metrics (makespan, P99/P50 latency, utilization, requeues) per
  scheduler.  These are *simulated* seconds — deterministic, so any
  change is a real behavior change; the diff gate reads them through the
  ``BENCH_fleet.json:*`` allowlist entry because retuning the trace or a
  scheduler default legitimately moves them.
* **engine overhead** — wall-clock to schedule a 400-job trace against
  a stub oracle (no simulation in the loop), i.e. the cost of the event
  loop + scheduler decisions themselves.  Bar: the whole schedule in
  well under simulated real time.

Runs under the ``bench_smoke`` marker; the drill asserts the two
acceptance properties (SJF beats FIFO on P99; the degradation forces at
least one migration/requeue) so CI's fleet-smoke job fails loudly if a
scheduler change regresses them.
"""

from __future__ import annotations

import time

import pytest

from repro.fleet import (
    Fleet,
    FleetJournal,
    bursty_trace,
    run_bursty_drill,
    standard_fleet_nodes,
)

from conftest import write_bench_json

#: Generous bar for scheduling 400 jobs with a stub oracle (seconds).
MAX_ENGINE_WALL_S = 5.0

#: Bound on the write-ahead journal's cost relative to the journal-off
#: schedule (the ISSUE's acceptance bar).
MAX_JOURNAL_OVERHEAD_PCT = 5.0

_DRILL_KEYS = (
    "makespan_s",
    "p99_latency_s",
    "p50_latency_s",
    "mean_wait_s",
    "utilization",
    "migrations",
    "requeues",
    "preemptions",
    "completed",
    "rejected",
)


class _StubOracle:
    """Constant-time cost answers: benches the engine, not the simulator."""

    _SPEED = {"box-3090": 2.5, "box-4080": 1.8, "box-4090": 1.0, "dgx-a100": 0.4}
    _BASE = {"30B": 30.0, "13B": 8.0, "6B": 2.0}

    def feasible(self, spec, node):
        if spec.hardware_class is not None:
            return spec.hardware_class == node.hardware_class
        return True

    def iteration_time(self, spec, node):
        sag = 3.0 if (node.failed_ssds or node.bw_sag < 1.0) else 1.0
        return self._BASE.get(spec.model, 5.0) * self._SPEED.get(node.name, 1.0) * sag

    def service_time(self, spec, node, iterations):
        return iterations * self.iteration_time(spec, node)

    def needs(self, spec, node):
        return None


@pytest.mark.bench_smoke
def test_bursty_drill_scores_fifo_vs_sjf():
    started = time.perf_counter()
    outcomes = {
        name: run_bursty_drill(name, degrade=True) for name in ("fifo", "sjf")
    }
    wall = time.perf_counter() - started

    payload = {
        "jobs": outcomes["fifo"].metrics["jobs"],
        "nodes": outcomes["fifo"].n_nodes,
        "drill_wall_s": wall,
    }
    for name, outcome in outcomes.items():
        payload[name] = {key: outcome.metrics[key] for key in _DRILL_KEYS}
    write_bench_json("fleet", payload)

    fifo_p99 = outcomes["fifo"].metrics["p99_latency_s"]
    sjf_p99 = outcomes["sjf"].metrics["p99_latency_s"]
    print(
        f"\nfleet drill: P99 fifo {fifo_p99:.0f} s vs sjf {sjf_p99:.0f} s "
        f"({fifo_p99 / sjf_p99:.1f}x), "
        f"requeues fifo={outcomes['fifo'].metrics['requeues']} "
        f"sjf={outcomes['sjf'].metrics['requeues']} ({wall:.1f} s wall)"
    )

    assert sjf_p99 < fifo_p99, (
        f"oracle-guided SJF should beat FIFO on P99 latency "
        f"(sjf {sjf_p99:.0f} s vs fifo {fifo_p99:.0f} s)"
    )
    for name, outcome in outcomes.items():
        moved = outcome.metrics["migrations"] + outcome.metrics["requeues"]
        assert moved >= 1, f"{name}: degradation should force a migration/requeue"


@pytest.mark.bench_smoke
def test_engine_overhead_scales_to_hundreds_of_jobs():
    n_jobs = 400
    specs = bursty_trace(n_jobs, seed=11)
    started = time.perf_counter()
    fleet = Fleet(standard_fleet_nodes(), "sjf", oracle=_StubOracle())
    for spec in specs:
        fleet.submit(spec)
    outcome = fleet.drain()
    wall = time.perf_counter() - started

    assert outcome.metrics["completed"] + outcome.metrics["rejected"] == n_jobs
    write_bench_json(
        "fleet",
        {
            "engine": {
                "jobs": n_jobs,
                "engine_wall_s": wall,
                "jobs_per_s": n_jobs / wall if wall > 0 else float("inf"),
            }
        },
    )
    print(f"\nfleet engine: {n_jobs} jobs scheduled in {wall:.2f} s wall")
    assert wall < MAX_ENGINE_WALL_S, (
        f"scheduling {n_jobs} stub jobs took {wall:.2f} s "
        f"(bar {MAX_ENGINE_WALL_S:.0f} s)"
    )


def _timed_drill(journal: str | None) -> float:
    started = time.perf_counter()
    run_bursty_drill("sjf", degrade=True, journal=journal, checkpoint_every=3)
    return time.perf_counter() - started


@pytest.mark.bench_smoke
def test_journal_overhead_within_bound(tmp_path):
    """The WAL must cost < 5% of the journal-off drill.

    Both arms run the identical resumable drill (``checkpoint_every=3``,
    so the event sequence — and through the sweep cache, the set of
    oracle evaluations — matches exactly); only the journal differs.
    The bound is computed from the *attributable* cost (measured
    per-append wall x records the drill actually wrote) against the
    journal-off wall; the raw wall-vs-wall A/B is recorded too, but
    only informationally — at ~100 ms timescales scheduler wall is
    noisier than the journal's contribution.
    """
    _timed_drill(None)  # warm the sweep cache: both arms hit it equally
    off_wall = _timed_drill(None)
    journal_path = str(tmp_path / "journal.jsonl")
    on_wall = _timed_drill(journal_path)
    probe = FleetJournal(journal_path)
    records = len(probe.records())
    probe.close()

    micro = FleetJournal(str(tmp_path / "micro.jsonl"))
    n_appends = 5000
    started = time.perf_counter()
    for i in range(n_appends):
        micro.append(
            "checkpoint", float(i), job_id="job-000", node="box-4090", iterations=3
        )
    per_append_s = (time.perf_counter() - started) / n_appends
    micro.close()

    attributable_pct = 100.0 * (records * per_append_s) / off_wall
    ab_pct = 100.0 * (on_wall - off_wall) / off_wall
    write_bench_json(
        "fleet",
        {
            "journal": {
                "records": records,
                "per_append_us": per_append_s * 1e6,
                "journal_off_wall_s": off_wall,
                "journal_on_wall_s": on_wall,
                "attributable_overhead_pct": attributable_pct,
                "ab_overhead_pct": ab_pct,
                "max_overhead_pct": MAX_JOURNAL_OVERHEAD_PCT,
            }
        },
    )
    print(
        f"\nfleet journal: {records} records at {per_append_s * 1e6:.0f} us/append "
        f"-> {attributable_pct:.2f}% of the journal-off drill "
        f"(A/B {ab_pct:+.1f}%, bound {MAX_JOURNAL_OVERHEAD_PCT:.0f}%)"
    )
    assert attributable_pct < MAX_JOURNAL_OVERHEAD_PCT, (
        f"journaling cost {attributable_pct:.2f}% of the journal-off "
        f"drill (bar {MAX_JOURNAL_OVERHEAD_PCT:.0f}%)"
    )
