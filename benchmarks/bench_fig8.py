"""Bench: regenerate Fig. 8 (activation swapping to SSDs vs main memory only)."""

from repro.experiments import fig8_act_to_ssd

from conftest import run_once


def test_fig8_128gb(benchmark, emit):
    emit(run_once(benchmark, lambda: fig8_act_to_ssd.run_panel(128)))


def test_fig8_256gb(benchmark, emit):
    emit(run_once(benchmark, lambda: fig8_act_to_ssd.run_panel(256)))
