"""Bench: regenerate Fig. 6 (max trainable model size vs main memory)."""

from repro.experiments import fig6_max_model

from conftest import run_once


def test_fig6a_24gb_gpus(benchmark, emit):
    emit(run_once(benchmark, fig6_max_model.run_fig6a))


def test_fig6b_rtx4080(benchmark, emit):
    emit(run_once(benchmark, fig6_max_model.run_fig6b))
