"""Bench: regenerate Fig. 13 (cost-effectiveness vs a DGX-A100)."""

from repro.experiments import fig13_cost

from conftest import run_once


def test_fig13_cost_effectiveness(benchmark, emit):
    emit(run_once(benchmark, fig13_cost.run))
