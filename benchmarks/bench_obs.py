"""Bench: cost of the runtime self-observation hooks (:mod:`repro.obs`).

Two instrumented surfaces, each held to the same bar — instrumentation
that is off must be indistinguishable from instrumentation that does not
exist:

* **span sites** on a small ``RatelRuntime.train_step`` loop —
  disabled is one module-global read returning ``None`` plus a shared
  no-op context manager (< 2% vs a baseline timed the same way);
  enabled (``obs.observe()``) is recorded for information only, since
  recording genuinely does work proportional to span count.
* the **sim event-loop dispatch hook** (:mod:`repro.obs.profile`) on a
  cold policy simulation — disabled is one module-global ``None``
  check per dispatched event (< 2%); a full ``profile()`` scope
  (cProfile + per-event counters) is recorded for information.

Timings take the **best of several interleaved repeats** — the minimum
of a deterministic NumPy loop is a low-variance estimator, and
interleaving off/on rounds keeps thermal/frequency drift from biasing
one side.  Results land in ``benchmarks/results/BENCH_obs.json``.  Runs
under the ``bench_smoke`` marker.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import obs
from repro.experiments.fig5_throughput import sweep_points
from repro.models.profile import profile_model
from repro.obs.profile import profile
from repro.runtime import (
    CrossEntropyLoss,
    GPTModel,
    RatelOptimizer,
    ratel_hook,
    ratel_init,
)

from conftest import write_bench_json

GB = 1e9
VOCAB, DIM, LAYERS, HEADS, SEQ, BATCH = 53, 32, 3, 4, 16, 4

#: The acceptance bar from the subsystem's design: instrumentation that
#: is off must be indistinguishable from instrumentation that does not
#: exist.
MAX_DISABLED_OVERHEAD_PCT = 2.0

STEPS = 3
REPEATS = 5


def _overhead_pct(off: float, on: float) -> float:
    return (on - off) / off * 100 if off > 0 else 0.0


@pytest.mark.bench_smoke
def test_disabled_instrumentation_is_free():
    loss_fn = CrossEntropyLoss()
    # Host-tier checkpoints and states: no NVMe I/O in the timed loop, so
    # the measurement isolates the Python-level instrumentation sites
    # (the thing the <2% bar is about) from disk jitter.
    with ratel_init(
        gpu_capacity=1 * GB,
        host_capacity=4 * GB,
        nvme_capacity=4 * GB,
        checkpoint_tier="host",
        states_tier="host",
        active_offload=True,
    ):
        model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(3))
        runtime = ratel_hook(model)
        RatelOptimizer(model, runtime, lr=1e-2)
        rng = np.random.default_rng(17)
        ids = rng.integers(0, VOCAB, size=(BATCH, SEQ))
        targets = np.roll(ids, -1, axis=1)

        def timed_steps() -> float:
            started = time.perf_counter()
            for _ in range(STEPS):
                runtime.train_step(lambda: loss_fn(model(ids), targets))
            return time.perf_counter() - started

        timed_steps()  # warm allocators and caches

        baseline: list[float] = []
        disabled: list[float] = []
        enabled: list[float] = []
        for _ in range(REPEATS):
            # "baseline" and "disabled" run the identical code path (the
            # recorder is None in both); timing them separately turns the
            # assertion into a same-vs-same comparison whose spread IS
            # the measurement noise floor, with the <2% bar above it.
            baseline.append(timed_steps())
            disabled.append(timed_steps())
            with obs.observe():
                enabled.append(timed_steps())

    off, on = min(baseline), min(disabled)
    recording = min(enabled)
    disabled_pct = _overhead_pct(off, on)
    enabled_pct = _overhead_pct(off, recording)

    payload = {
        "steps": STEPS,
        "repeats": REPEATS,
        "baseline_s": off,
        "disabled_s": on,
        "enabled_s": recording,
        "disabled_overhead_pct": disabled_pct,
        "enabled_overhead_pct": enabled_pct,
        "max_disabled_overhead_pct": MAX_DISABLED_OVERHEAD_PCT,
    }
    write_bench_json("obs", payload)
    print(
        f"\nobs overhead: disabled {disabled_pct:+.2f}% "
        f"(bar {MAX_DISABLED_OVERHEAD_PCT:.0f}%), enabled {enabled_pct:+.1f}%"
    )

    assert disabled_pct < MAX_DISABLED_OVERHEAD_PCT, (
        f"disabled instrumentation costs {disabled_pct:.2f}% "
        f"(bar {MAX_DISABLED_OVERHEAD_PCT}%)"
    )


@pytest.mark.bench_smoke
def test_disabled_profiler_hook_is_free():
    """The sim event loop's dispatch hook must be free when no profiler is on.

    The disabled state is one module-global ``None`` check per dispatched
    event — a cost of nanoseconds against per-event work of microseconds.
    End-to-end A/A timing cannot resolve that under a 2% bar on a noisy
    host (same-code runs swing more than the bar), so the bound is
    measured directly:

    * the real **per-event cost** comes from one instrumented simulate
      (events dispatched / wall seconds);
    * the **check cost** comes from micro-timing the dispatch site's
      guarded call against a plain call over a tight loop (min of
      repeats), isolating the one extra global load + ``is None``.

    The ratio of the two is the disabled overhead; a full ``profile()``
    scope is also timed end-to-end for information (cProfile genuinely
    does work).
    """
    point = sweep_points()[0]
    model_profile = profile_model(point.config, point.batch_size)
    assert point.policy.feasible(model_profile, point.server)
    point.policy.simulate(model_profile, point.server)  # warm the plan memo

    from repro.obs.profile import EventLoopStats
    from repro.sim import engine

    stats = EventLoopStats()
    previous = engine.set_event_hook(stats.dispatch)
    try:
        started = time.perf_counter()
        point.policy.simulate(model_profile, point.server)
        sim_wall_s = time.perf_counter() - started
    finally:
        engine.set_event_hook(previous)
    events = stats.total_events
    assert events > 0
    per_event_s = sim_wall_s / events

    loops = 500_000

    def _noop(arg) -> None:
        pass

    def timed_checked() -> float:
        started = time.perf_counter()
        for _ in range(loops):
            if engine._event_hook is None:  # the engine's dispatch site
                _noop(None)
        return time.perf_counter() - started

    def timed_plain() -> float:
        started = time.perf_counter()
        for _ in range(loops):
            _noop(None)
        return time.perf_counter() - started

    timed_checked(), timed_plain()  # warm
    checked = min(timed_checked() for _ in range(REPEATS))
    plain = min(timed_plain() for _ in range(REPEATS))
    check_cost_s = max(0.0, checked - plain) / loops
    disabled_pct = check_cost_s / per_event_s * 100

    with profile():
        started = time.perf_counter()
        point.policy.simulate(model_profile, point.server)
        profiled_wall_s = time.perf_counter() - started
    profiled_pct = _overhead_pct(sim_wall_s, profiled_wall_s)

    payload = {
        "profiler": {
            "repeats": REPEATS,
            "events_per_simulate": events,
            "per_event_us": per_event_s * 1e6,
            "disabled_check_ns": check_cost_s * 1e9,
            "disabled_overhead_pct": disabled_pct,
            "profiled_overhead_pct": profiled_pct,
            "max_disabled_overhead_pct": MAX_DISABLED_OVERHEAD_PCT,
        }
    }
    write_bench_json("obs", payload)
    print(
        f"\nprofiler hook overhead: disabled {disabled_pct:+.3f}% "
        f"({check_cost_s * 1e9:.1f} ns/event vs {per_event_s * 1e6:.2f} us/event; "
        f"bar {MAX_DISABLED_OVERHEAD_PCT:.0f}%), profiling {profiled_pct:+.1f}%"
    )

    assert disabled_pct < MAX_DISABLED_OVERHEAD_PCT, (
        f"disabled profiler hook costs {disabled_pct:.3f}% "
        f"(bar {MAX_DISABLED_OVERHEAD_PCT}%)"
    )
