"""Bench: cost of the runtime span instrumentation (:mod:`repro.obs`).

Two numbers on a small ``RatelRuntime.train_step`` loop:

* **disabled** — the default state.  Every instrumented site is one
  module-global read returning ``None`` plus a shared no-op context
  manager; the bar is **< 2%** vs a baseline timed the same way.
* **enabled** — ``obs.observe()`` active, every span recorded with
  ``time.perf_counter``.  Recorded for information (no tight bar:
  recording genuinely does work proportional to span count).

Timings take the **best of several interleaved repeats** — the minimum
of a deterministic NumPy loop is a low-variance estimator, and
interleaving off/on rounds keeps thermal/frequency drift from biasing
one side.  Results land in ``benchmarks/results/BENCH_obs.json``.  Runs
under the ``bench_smoke`` marker.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import obs
from repro.runtime import (
    CrossEntropyLoss,
    GPTModel,
    RatelOptimizer,
    ratel_hook,
    ratel_init,
)

from conftest import write_bench_json

GB = 1e9
VOCAB, DIM, LAYERS, HEADS, SEQ, BATCH = 53, 32, 3, 4, 16, 4

#: The acceptance bar from the subsystem's design: instrumentation that
#: is off must be indistinguishable from instrumentation that does not
#: exist.
MAX_DISABLED_OVERHEAD_PCT = 2.0

STEPS = 3
REPEATS = 5


def _overhead_pct(off: float, on: float) -> float:
    return (on - off) / off * 100 if off > 0 else 0.0


@pytest.mark.bench_smoke
def test_disabled_instrumentation_is_free():
    loss_fn = CrossEntropyLoss()
    # Host-tier checkpoints and states: no NVMe I/O in the timed loop, so
    # the measurement isolates the Python-level instrumentation sites
    # (the thing the <2% bar is about) from disk jitter.
    with ratel_init(
        gpu_capacity=1 * GB,
        host_capacity=4 * GB,
        nvme_capacity=4 * GB,
        checkpoint_tier="host",
        states_tier="host",
        active_offload=True,
    ):
        model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(3))
        runtime = ratel_hook(model)
        RatelOptimizer(model, runtime, lr=1e-2)
        rng = np.random.default_rng(17)
        ids = rng.integers(0, VOCAB, size=(BATCH, SEQ))
        targets = np.roll(ids, -1, axis=1)

        def timed_steps() -> float:
            started = time.perf_counter()
            for _ in range(STEPS):
                runtime.train_step(lambda: loss_fn(model(ids), targets))
            return time.perf_counter() - started

        timed_steps()  # warm allocators and caches

        baseline: list[float] = []
        disabled: list[float] = []
        enabled: list[float] = []
        for _ in range(REPEATS):
            # "baseline" and "disabled" run the identical code path (the
            # recorder is None in both); timing them separately turns the
            # assertion into a same-vs-same comparison whose spread IS
            # the measurement noise floor, with the <2% bar above it.
            baseline.append(timed_steps())
            disabled.append(timed_steps())
            with obs.observe():
                enabled.append(timed_steps())

    off, on = min(baseline), min(disabled)
    recording = min(enabled)
    disabled_pct = _overhead_pct(off, on)
    enabled_pct = _overhead_pct(off, recording)

    payload = {
        "steps": STEPS,
        "repeats": REPEATS,
        "baseline_s": off,
        "disabled_s": on,
        "enabled_s": recording,
        "disabled_overhead_pct": disabled_pct,
        "enabled_overhead_pct": enabled_pct,
        "max_disabled_overhead_pct": MAX_DISABLED_OVERHEAD_PCT,
    }
    write_bench_json("obs", payload)
    print(
        f"\nobs overhead: disabled {disabled_pct:+.2f}% "
        f"(bar {MAX_DISABLED_OVERHEAD_PCT:.0f}%), enabled {enabled_pct:+.1f}%"
    )

    assert disabled_pct < MAX_DISABLED_OVERHEAD_PCT, (
        f"disabled instrumentation costs {disabled_pct:.2f}% "
        f"(bar {MAX_DISABLED_OVERHEAD_PCT}%)"
    )
