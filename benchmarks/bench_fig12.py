"""Bench: regenerate Fig. 12 (DiT diffusion models, Ratel vs Fast-DiT)."""

from repro.experiments import fig12_diffusion

from conftest import run_once


def test_fig12_diffusion(benchmark, emit):
    emit(run_once(benchmark, fig12_diffusion.run))
