"""Bench: the functional storage hierarchy's real disk-spill throughput.

Unlike the simulation benches, this measures actual work: moving a
tensor host -> NVMe spills a real ``.npy`` file (fp16-encoded) and moving
it back reloads it.  The numbers characterise the test machine's disk,
not the paper's SSD array — they exist to show the spill path is real
and to catch pathological regressions in the storage manager.
"""

import numpy as np

from repro.runtime import HOST, NVME, StorageManager

MB = 10**6


def test_spill_roundtrip_16mb(benchmark):
    rng = np.random.default_rng(0)
    array = rng.normal(size=(8 * MB,)).astype(np.float32)  # 16 MB at fp16
    manager = StorageManager(10**9, 10**9, 10**9)
    stored = manager.put("x", array, HOST, itemsize=2)

    def roundtrip():
        manager.move(stored, NVME)
        manager.move(stored, HOST)
        return stored.data().shape

    try:
        shape = benchmark(roundtrip)
        assert shape == array.shape
    finally:
        manager.close()


def test_cpu_adam_step_1m_params(benchmark):
    from repro.runtime import CPUAdam, Tensor

    rng = np.random.default_rng(0)
    n = 10**6
    manager = StorageManager(10**9, 10**9, 10**9)
    try:
        param = Tensor(rng.normal(size=(n,)).astype(np.float32), requires_grad=True)
        optimizer = CPUAdam([("w", param)], manager, states_tier=NVME)
        grad = rng.normal(size=(n,)).astype(np.float32)
        benchmark(lambda: optimizer.step_param("w", grad))
    finally:
        manager.close()
