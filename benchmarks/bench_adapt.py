"""Bench: cost of the health-monitor hook on ``RatelRuntime.train_step``.

The adaptive-resilience contract mirrors the obs one: a runtime without
a health monitor attached must train at the speed of a runtime that has
never heard of :mod:`repro.adapt`.  Two numbers on a small
``train_step`` loop:

* **detached** — the default state.  The only instrumented site is one
  ``self._health is None`` check in ``train_step``; the bar is **< 2%**
  vs a baseline timed the same way.
* **attached** — :class:`~repro.adapt.RuntimeHealth` installed, every
  step timed and fed through the EWMA drift detector.  Recorded for
  information (no tight bar: monitoring genuinely does work per step).

Timings take the **best of several interleaved repeats** — the minimum
of a deterministic NumPy loop is a low-variance estimator, and
interleaving detached/attached rounds keeps thermal/frequency drift from
biasing one side.  Results land in
``benchmarks/results/BENCH_adapt.json``.  Runs under the ``bench_smoke``
marker.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.adapt import RuntimeHealth
from repro.runtime import (
    CrossEntropyLoss,
    GPTModel,
    RatelOptimizer,
    ratel_hook,
    ratel_init,
)

from conftest import write_bench_json

GB = 1e9
VOCAB, DIM, LAYERS, HEADS, SEQ, BATCH = 53, 32, 3, 4, 16, 4

#: Same acceptance bar as the obs bench: a monitor that is not attached
#: must be indistinguishable from a monitor that does not exist.
MAX_DETACHED_OVERHEAD_PCT = 2.0

STEPS = 3
REPEATS = 5


def _overhead_pct(off: float, on: float) -> float:
    return (on - off) / off * 100 if off > 0 else 0.0


@pytest.mark.bench_smoke
def test_detached_health_monitor_is_free():
    loss_fn = CrossEntropyLoss()
    # Host-tier checkpoints and states: no NVMe I/O in the timed loop, so
    # the measurement isolates the train_step dispatch overhead (the
    # thing the <2% bar is about) from disk jitter.
    with ratel_init(
        gpu_capacity=1 * GB,
        host_capacity=4 * GB,
        nvme_capacity=4 * GB,
        checkpoint_tier="host",
        states_tier="host",
        active_offload=True,
    ):
        model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(3))
        runtime = ratel_hook(model)
        RatelOptimizer(model, runtime, lr=1e-2)
        rng = np.random.default_rng(17)
        ids = rng.integers(0, VOCAB, size=(BATCH, SEQ))
        targets = np.roll(ids, -1, axis=1)

        def timed_steps() -> float:
            started = time.perf_counter()
            for _ in range(STEPS):
                runtime.train_step(lambda: loss_fn(model(ids), targets))
            return time.perf_counter() - started

        timed_steps()  # warm allocators and caches

        # A generous warmup keeps the monitor in its baseline-building
        # phase for the whole timed run: the attached number measures the
        # per-step observation cost, not a mid-bench ladder transition.
        health = RuntimeHealth(warmup_steps=10_000)

        baseline: list[float] = []
        detached: list[float] = []
        attached: list[float] = []
        for _ in range(REPEATS):
            # "baseline" and "detached" run the identical code path
            # (self._health is None in both); timing them separately
            # turns the assertion into a same-vs-same comparison whose
            # spread IS the measurement noise floor, with the <2% bar
            # above it.
            runtime._health = None
            baseline.append(timed_steps())
            detached.append(timed_steps())
            runtime.attach_health(health)
            attached.append(timed_steps())
        runtime._health = None

    off, on = min(baseline), min(detached)
    monitored = min(attached)
    detached_pct = _overhead_pct(off, on)
    attached_pct = _overhead_pct(off, monitored)

    payload = {
        "steps": STEPS,
        "repeats": REPEATS,
        "baseline_s": off,
        "detached_s": on,
        "attached_s": monitored,
        "detached_overhead_pct": detached_pct,
        "attached_overhead_pct": attached_pct,
        "max_detached_overhead_pct": MAX_DETACHED_OVERHEAD_PCT,
    }
    write_bench_json("adapt", payload)
    print(
        f"\nadapt overhead: detached {detached_pct:+.2f}% "
        f"(bar {MAX_DETACHED_OVERHEAD_PCT:.0f}%), attached {attached_pct:+.1f}%"
    )

    assert detached_pct < MAX_DETACHED_OVERHEAD_PCT, (
        f"detached health monitor costs {detached_pct:.2f}% "
        f"(bar {MAX_DETACHED_OVERHEAD_PCT}%)"
    )
