"""Bench: cost of the fault-injection hooks when nothing is injected.

Resilience must be close to free on the happy path.  Two comparisons:

* **storage** — a spill/load loop through :class:`StorageManager` with
  no injector attached vs an idle :class:`FaultInjector` (all rates 0):
  the per-operation hook calls are the only difference;
* **simulator** — ``run_iteration`` with ``faults=None`` vs an empty
  :class:`FaultSchedule`: the installation path with zero events.

The timings land in ``benchmarks/results/BENCH_faults.json``.  The
assertion bar is deliberately loose (25%) to stay flake-free on shared
runners; the recorded overhead is typically well under 5%.  Runs under
the ``bench_smoke`` marker.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import RatelPolicy
from repro.core.engine import run_iteration
from repro.faults import FaultInjector, FaultSchedule
from repro.hardware import evaluation_server
from repro.models import llm, profile_model
from repro.runtime import HOST, NVME, StorageManager

from conftest import write_bench_json

MB = 10**6

#: Flake-resistant acceptance bar; the recorded number is what matters.
MAX_OVERHEAD_PCT = 25.0

SPILL_ROUNDS = 60


def _storage_loop(tmp_dir: str, faults) -> float:
    """Seconds for SPILL_ROUNDS spill+load round-trips of a 1 MB tensor."""
    os.makedirs(tmp_dir, exist_ok=True)
    manager = StorageManager(
        10 * MB, 10 * MB, 100 * MB, spill_dir=tmp_dir, faults=faults
    )
    try:
        rng = np.random.default_rng(0)
        stored = manager.put("x", rng.normal(size=(250_000,)), HOST, itemsize=4)
        started = time.perf_counter()
        for _ in range(SPILL_ROUNDS):
            manager.move(stored, NVME)
            manager.move(stored, HOST)
        return time.perf_counter() - started
    finally:
        manager.close()


def _sim_loop(faults) -> float:
    server = evaluation_server().with_ssds(6)
    schedule = RatelPolicy().compile(profile_model(llm("13B"), 32), server)
    started = time.perf_counter()
    for _ in range(20):
        run_iteration(server, schedule, faults=faults)
    return time.perf_counter() - started


def _overhead_pct(off: float, on: float) -> float:
    return (on - off) / off * 100 if off > 0 else 0.0


@pytest.mark.bench_smoke
def test_idle_fault_hooks_are_cheap(tmp_path):
    # Warm both paths (first spill pays directory/page-cache setup).
    _storage_loop(str(tmp_path / "warm"), None)

    storage_off = _storage_loop(str(tmp_path / "off"), None)
    storage_on = _storage_loop(str(tmp_path / "on"), FaultInjector())

    sim_off = _sim_loop(None)
    sim_on = _sim_loop(FaultSchedule(()))

    storage_pct = _overhead_pct(storage_off, storage_on)
    sim_pct = _overhead_pct(sim_off, sim_on)

    payload = {
        "storage": {
            "rounds": SPILL_ROUNDS,
            "hooks_off_s": storage_off,
            "hooks_on_s": storage_on,
            "overhead_pct": storage_pct,
        },
        "simulator": {
            "iterations": 20,
            "no_schedule_s": sim_off,
            "empty_schedule_s": sim_on,
            "overhead_pct": sim_pct,
        },
        "max_overhead_pct": MAX_OVERHEAD_PCT,
    }
    write_bench_json("faults", payload)
    print(
        f"\nfault-hook overhead: storage {storage_pct:+.1f}%, "
        f"simulator {sim_pct:+.1f}% (bar {MAX_OVERHEAD_PCT:.0f}%)"
    )

    assert storage_pct < MAX_OVERHEAD_PCT, (
        f"idle storage fault hooks cost {storage_pct:.1f}%"
    )
    assert sim_pct < MAX_OVERHEAD_PCT, (
        f"empty fault schedule costs {sim_pct:.1f}% in the simulator"
    )
