"""Diff freshly measured ``BENCH_*.json`` files against a git baseline.

CI regenerates the bench-smoke timings, then runs::

    python benchmarks/diff_bench.py --baseline-ref HEAD

which compares every numeric *timing* leaf (keys ending in ``_s`` —
seconds, where bigger is worse) in ``benchmarks/results/BENCH_*.json``
against the copy committed at the baseline ref.  Slowdowns beyond the
threshold (default 10%) are flagged; the rendered markdown table goes to
stdout and, when ``$GITHUB_STEP_SUMMARY`` is set, into the job summary.

The step is informational: shared-runner timings are noisy, so the
default exit code is 0 even with regressions (CI additionally marks the
step ``continue-on-error``).  Pass ``--fail-on-regression`` locally to
get a non-zero exit instead.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import subprocess
import sys

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def timing_leaves(payload, prefix: str = "") -> dict[str, float]:
    """Flatten to ``{dotted.path: seconds}`` for keys ending in ``_s``."""
    leaves: dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (dict, list)):
                leaves.update(timing_leaves(value, path))
            elif isinstance(value, (int, float)) and str(key).endswith("_s"):
                leaves[path] = float(value)
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            leaves.update(timing_leaves(value, f"{prefix}[{index}]"))
    return leaves


def baseline_payload(ref: str, repo_path: str):
    """The file as committed at ``ref``, or ``None`` when absent there."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:{repo_path}"],
        capture_output=True,
        text=True,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))) or ".",
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def diff_file(name: str, current, baseline, threshold_pct: float) -> list[dict]:
    """Rows comparing every timing leaf present on both sides."""
    rows = []
    old = timing_leaves(baseline)
    for path, new_value in sorted(timing_leaves(current).items()):
        old_value = old.get(path)
        if old_value is None or old_value <= 0:
            continue
        change_pct = (new_value - old_value) / old_value * 100
        rows.append(
            {
                "file": name,
                "metric": path,
                "baseline_s": old_value,
                "current_s": new_value,
                "change_pct": change_pct,
                "regressed": change_pct > threshold_pct,
            }
        )
    return rows


def render_markdown(rows: list[dict], threshold_pct: float, ref: str) -> str:
    lines = [f"### Bench diff vs `{ref}` (flagging > {threshold_pct:.0f}% slowdowns)", ""]
    if not rows:
        lines.append("No committed baseline timings to compare against.")
        return "\n".join(lines) + "\n"
    lines += [
        "| file | metric | baseline | current | change | |",
        "| --- | --- | ---: | ---: | ---: | --- |",
    ]
    for row in rows:
        flag = ":warning: regression" if row["regressed"] else ""
        lines.append(
            f"| {row['file']} | {row['metric']} | {row['baseline_s'] * 1e3:.1f} ms "
            f"| {row['current_s'] * 1e3:.1f} ms | {row['change_pct']:+.1f}% | {flag} |"
        )
    regressions = [r for r in rows if r["regressed"]]
    lines.append("")
    if regressions:
        lines.append(
            f"**{len(regressions)} timing(s) regressed more than "
            f"{threshold_pct:.0f}%** (noisy-runner caveat applies)."
        )
    else:
        lines.append(f"No regressions beyond {threshold_pct:.0f}%.")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-ref", default="HEAD",
        help="git ref holding the committed baseline (default: HEAD)",
    )
    parser.add_argument(
        "--threshold-pct", type=float, default=10.0,
        help="flag slowdowns beyond this percentage (default: 10)",
    )
    parser.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit non-zero when any timing regressed past the threshold",
    )
    args = parser.parse_args(argv)

    rows: list[dict] = []
    for path in sorted(glob.glob(os.path.join(RESULTS_DIR, "BENCH_*.json"))):
        name = os.path.basename(path)
        with open(path) as handle:
            current = json.load(handle)
        baseline = baseline_payload(args.baseline_ref, f"benchmarks/results/{name}")
        if baseline is None:
            print(f"note: no baseline for {name} at {args.baseline_ref}; skipping")
            continue
        rows.extend(diff_file(name, current, baseline, args.threshold_pct))

    report = render_markdown(rows, args.threshold_pct, args.baseline_ref)
    print(report)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(report)

    if args.fail_on_regression and any(row["regressed"] for row in rows):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
