"""Gate fresh benchmark results against committed baselines.

Two diff modes run from one invocation:

* **Wall-clock timings** (informational by default): every numeric
  *timing* leaf (keys ending in ``_s`` — seconds, bigger is worse) in
  ``benchmarks/results/BENCH_*.json`` is compared against the copy
  committed at ``--baseline-ref``.  Shared-runner timings are noisy, so
  regressions here only fail the run under ``--fail-on-timings``.

* **Ledger metrics** (the blocking CI gate): when ``--ledger-current``
  points at a freshly regenerated run ledger (see ``repro sweep
  --ledger``), its newest entry per label is diffed against the
  committed baseline ledger (``--ledger-baseline``, default
  ``benchmarks/results/ledger.jsonl``) via :mod:`repro.obs.diff`.  The
  simulated iteration times are deterministic across machines, so an
  iteration-time regression beyond ``--threshold-pct`` exits non-zero —
  unless the entry's label matches the allowlist.

Intentional changes are recorded in
``benchmarks/results/bench_allowlist.json``::

    {"allow": [{"pattern": "evaluate:Ratel/13B/*", "reason": "PR #42 ..."}]}

Patterns are shell-style (:mod:`fnmatch`) and match ledger labels and
``file:metric`` timing ids.  The rendered markdown report goes to stdout
and, when ``$GITHUB_STEP_SUMMARY`` is set, into the job summary.
"""

from __future__ import annotations

import argparse
import fnmatch
import glob
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def _bootstrap_src() -> None:
    """Make ``repro`` importable when run as a plain script."""
    src = os.path.join(REPO_ROOT, "src")
    if src not in sys.path:
        sys.path.insert(0, src)


# -- allowlist -----------------------------------------------------------------


def load_allowlist(path: str | None) -> list[dict]:
    """``[{"pattern": ..., "reason": ...}, ...]`` or ``[]`` when absent."""
    if not path or not os.path.exists(path):
        return []
    with open(path) as handle:
        payload = json.load(handle)
    entries = payload.get("allow", []) if isinstance(payload, dict) else []
    return [entry for entry in entries if isinstance(entry, dict) and entry.get("pattern")]


def allowed(ident: str, allowlist: list[dict]) -> dict | None:
    """The first allowlist entry matching ``ident``, or ``None``."""
    for entry in allowlist:
        if fnmatch.fnmatch(ident, entry["pattern"]):
            return entry
    return None


# -- wall-clock timing diff (BENCH_*.json vs a git ref) ------------------------


def timing_leaves(payload, prefix: str = "") -> dict[str, float]:
    """Flatten to ``{dotted.path: seconds}`` for keys ending in ``_s``."""
    leaves: dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (dict, list)):
                leaves.update(timing_leaves(value, path))
            elif isinstance(value, (int, float)) and str(key).endswith("_s"):
                leaves[path] = float(value)
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            leaves.update(timing_leaves(value, f"{prefix}[{index}]"))
    return leaves


def baseline_payload(ref: str, repo_path: str):
    """The file as committed at ``ref``, or ``None`` when absent there."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:{repo_path}"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def diff_file(
    name: str,
    current,
    baseline,
    threshold_pct: float,
    allowlist: list[dict] | None = None,
) -> list[dict]:
    """Rows comparing every timing leaf present on both sides."""
    rows = []
    old = timing_leaves(baseline)
    for path, new_value in sorted(timing_leaves(current).items()):
        old_value = old.get(path)
        if old_value is None or old_value <= 0:
            continue
        change_pct = (new_value - old_value) / old_value * 100
        waiver = allowed(f"{name}:{path}", allowlist or [])
        rows.append(
            {
                "file": name,
                "metric": path,
                "baseline_s": old_value,
                "current_s": new_value,
                "change_pct": change_pct,
                "regressed": change_pct > threshold_pct and waiver is None,
                "allowed": waiver["reason"] if waiver else None,
            }
        )
    return rows


def timing_rows(
    results_dir: str, ref: str, threshold_pct: float, allowlist: list[dict]
) -> list[dict]:
    rows: list[dict] = []
    for path in sorted(glob.glob(os.path.join(results_dir, "BENCH_*.json"))):
        name = os.path.basename(path)
        with open(path) as handle:
            current = json.load(handle)
        baseline = baseline_payload(ref, f"benchmarks/results/{name}")
        if baseline is None:
            print(f"note: no baseline for {name} at {ref}; skipping")
            continue
        rows.extend(diff_file(name, current, baseline, threshold_pct, allowlist))
    return rows


# -- ledger diff (simulated metrics; the blocking gate) ------------------------


def ledger_rows(
    baseline_path: str,
    current_path: str,
    threshold_pct: float,
    allowlist: list[dict],
) -> tuple[list[dict], list[str]]:
    """Per-label iteration-time rows plus labels missing from the current run.

    Each regressed row carries a ``detail`` string blaming the worst
    stage and its dominant resource delta (via :mod:`repro.obs.diff`),
    so the CI summary names the culprit, not just the number.
    """
    _bootstrap_src()
    from repro.obs.diff import diff_entries
    from repro.obs.ledger import load_ledger

    base = load_ledger(baseline_path).latest_by_label()
    current = load_ledger(current_path).latest_by_label()
    rows: list[dict] = []
    for label, entry_b in sorted(current.items()):
        entry_a = base.get(label)
        if entry_a is None:
            continue
        diff = diff_entries(entry_a, entry_b)
        slowed = diff.regressed(threshold_pct)
        waiver = allowed(label, allowlist)
        detail = ""
        if slowed:
            blamed = diff.regressions(threshold_pct) or [
                stage for stage in diff.stages if stage.only_in is None
            ]
            if blamed:
                worst = max(blamed, key=lambda stage: stage.delta_pct or 0.0)
                detail = f"{worst.stage} {worst.delta_pct:+.1f}%"
                dominant = worst.dominant()
                if dominant is not None:
                    detail += f" ({dominant.render()})"
                if worst.binding_flipped:
                    detail += (
                        f"; binding {worst.bottleneck_a}→{worst.bottleneck_b}"
                    )
        rows.append(
            {
                "label": label,
                "baseline_s": diff.iteration_a,
                "current_s": diff.iteration_b,
                "change_pct": diff.delta_pct or 0.0,
                "regressed": slowed and waiver is None,
                "allowed": waiver["reason"] if waiver else None,
                "detail": detail,
                "notes": list(diff.notes),
            }
        )
    missing = sorted(label for label in base if label not in current)
    return rows, missing


# -- report --------------------------------------------------------------------


def _flag(row: dict) -> str:
    if row["allowed"]:
        return f":white_check_mark: allowlisted ({row['allowed']})"
    if row["regressed"]:
        return ":warning: regression"
    return ""


def render_markdown(
    timing: list[dict],
    ledger: list[dict],
    missing: list[str],
    threshold_pct: float,
    ref: str,
) -> str:
    lines = [f"### Bench diff (flagging > {threshold_pct:.0f}% slowdowns)", ""]

    lines.append("#### Simulated metrics (ledger — blocking)")
    lines.append("")
    if ledger:
        lines += [
            "| run | baseline | current | change | stage blame | |",
            "| --- | ---: | ---: | ---: | --- | --- |",
        ]
        for row in ledger:
            lines.append(
                f"| {row['label']} | {row['baseline_s']:.2f} s "
                f"| {row['current_s']:.2f} s | {row['change_pct']:+.1f}% "
                f"| {row['detail']} | {_flag(row)} |"
            )
        for row in ledger:
            for note in row["notes"]:
                lines.append(f"- note ({row['label']}): {note}")
    else:
        lines.append("No ledger comparison ran (missing baseline or current ledger).")
    if missing:
        lines.append(
            f"- {len(missing)} baseline run(s) absent from the current ledger: "
            + ", ".join(missing)
        )
    lines.append("")

    lines.append(f"#### Wall-clock timings vs `{ref}` (informational)")
    lines.append("")
    if timing:
        lines += [
            "| file | metric | baseline | current | change | |",
            "| --- | --- | ---: | ---: | ---: | --- |",
        ]
        for row in timing:
            lines.append(
                f"| {row['file']} | {row['metric']} | {row['baseline_s'] * 1e3:.1f} ms "
                f"| {row['current_s'] * 1e3:.1f} ms | {row['change_pct']:+.1f}% "
                f"| {_flag(row)} |"
            )
    else:
        lines.append("No committed baseline timings to compare against.")
    lines.append("")

    gated = [row for row in ledger if row["regressed"]]
    noisy = [row for row in timing if row["regressed"]]
    if gated:
        lines.append(
            f"**{len(gated)} simulated run(s) regressed more than "
            f"{threshold_pct:.0f}% — gate FAILS** (add an allowlist entry in "
            "`benchmarks/results/bench_allowlist.json` if intentional)."
        )
    elif noisy:
        lines.append(
            f"{len(noisy)} wall-clock timing(s) regressed more than "
            f"{threshold_pct:.0f}% (noisy-runner caveat applies; not gated)."
        )
    else:
        lines.append(f"No regressions beyond {threshold_pct:.0f}%.")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-ref", default="HEAD",
        help="git ref holding the committed timing baseline (default: HEAD)",
    )
    parser.add_argument(
        "--threshold-pct", type=float, default=10.0,
        help="flag slowdowns beyond this percentage (default: 10)",
    )
    parser.add_argument(
        "--results-dir", default=RESULTS_DIR,
        help="directory holding fresh BENCH_*.json files",
    )
    parser.add_argument(
        "--allowlist", default=None, metavar="PATH",
        help="allowlist JSON (default: <results-dir>/bench_allowlist.json)",
    )
    parser.add_argument(
        "--ledger-baseline", default=None, metavar="PATH",
        help="committed baseline ledger (default: <results-dir>/ledger.jsonl)",
    )
    parser.add_argument(
        "--ledger-current", default=None, metavar="PATH",
        help="freshly regenerated ledger to gate (no ledger gate when omitted)",
    )
    parser.add_argument(
        "--fail-on-timings", action="store_true",
        help="also exit non-zero on wall-clock timing regressions",
    )
    parser.add_argument(
        "--fail-on-regression", action="store_true",
        help="deprecated alias for --fail-on-timings",
    )
    parser.add_argument(
        "--warn-only", action="store_true",
        help="never exit non-zero, even on gated ledger regressions",
    )
    args = parser.parse_args(argv)

    allowlist = load_allowlist(
        args.allowlist or os.path.join(args.results_dir, "bench_allowlist.json")
    )
    timing = timing_rows(
        args.results_dir, args.baseline_ref, args.threshold_pct, allowlist
    )

    ledger: list[dict] = []
    missing: list[str] = []
    ledger_baseline = args.ledger_baseline or os.path.join(
        args.results_dir, "ledger.jsonl"
    )
    if args.ledger_current:
        if os.path.exists(ledger_baseline):
            ledger, missing = ledger_rows(
                ledger_baseline, args.ledger_current, args.threshold_pct, allowlist
            )
        else:
            print(f"note: no baseline ledger at {ledger_baseline}; ledger gate skipped")

    report = render_markdown(
        timing, ledger, missing, args.threshold_pct, args.baseline_ref
    )
    print(report)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(report)

    if args.warn_only:
        return 0
    if any(row["regressed"] for row in ledger):
        return 1
    if (args.fail_on_timings or args.fail_on_regression) and any(
        row["regressed"] for row in timing
    ):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
