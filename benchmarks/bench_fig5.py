"""Bench: regenerate Fig. 5 (end-to-end throughput vs batch and model size)."""

from repro.experiments import fig5_throughput

from conftest import run_once


def test_fig5a_13b_on_4090(benchmark, emit):
    emit(run_once(benchmark, fig5_throughput.run_fig5a))


def test_fig5b_13b_on_3090(benchmark, emit):
    emit(run_once(benchmark, fig5_throughput.run_fig5b))


def test_fig5c_tflops_vs_model_size(benchmark, emit):
    emit(run_once(benchmark, fig5_throughput.run_fig5c))
