"""Bench: regenerate Fig. 2 (motivation: max size, GPU busy, optimizer share)."""

from repro.experiments import fig2_motivation

from conftest import run_once


def test_fig2a_max_model_size(benchmark, emit):
    emit(run_once(benchmark, fig2_motivation.run_fig2a))


def test_fig2b_gpu_busy(benchmark, emit):
    emit(run_once(benchmark, fig2_motivation.run_fig2b))


def test_fig2c_optimizer_share(benchmark, emit):
    emit(run_once(benchmark, fig2_motivation.run_fig2c))
