"""Bench: the planner service's chaos drill as a scored SLO gate.

One payload lands in ``benchmarks/results/BENCH_serve.json``: the full
:class:`~repro.serve.ChaosReport` — per-phase status/rung/P99 stats,
the breaker transition arc, journal accounting across the simulated
``kill -9`` + restart, and the drill's violation list.  The numbers
are dominated by deliberately-injected waits (cooldowns, deadlines),
so the diff gate reads them through the ``BENCH_serve.json:*``
allowlist entry; the bench's own assertion — ``report.passed`` — is
the gate that matters, and CI's serve-smoke job fails loudly on any
SLO violation.

Runs under the ``bench_smoke`` marker.
"""

from __future__ import annotations

import time

import pytest

from repro.serve import run_chaos_drill

from conftest import write_bench_json

#: Generous wall bar: the drill's sleeps sum to well under 2 s.
MAX_DRILL_WALL_S = 30.0


@pytest.mark.bench_smoke
def test_chaos_drill_meets_slos(tmp_path):
    started = time.perf_counter()
    report = run_chaos_drill(str(tmp_path), seed=7)
    wall = time.perf_counter() - started

    write_bench_json("serve", report.to_payload())

    flood = report.phase("flood")
    shed = flood.statuses.get(429, 0) + flood.statuses.get(503, 0)
    print(
        f"\nserve drill: {len(report.phases)} phases in {wall:.1f} s wall, "
        f"breaker arc {' -> '.join(report.breaker_states)}, "
        f"flood shed {shed}/{flood.sent}, "
        f"journal {report.journal['accepted']} accepted = "
        f"{report.journal['done']} done + {report.journal['failed']} failed"
    )

    assert report.passed, "SLO violations: " + "; ".join(report.violations)
    assert wall < MAX_DRILL_WALL_S, (
        f"chaos drill took {wall:.1f} s (bar {MAX_DRILL_WALL_S:.0f} s)"
    )
