"""Tests for the self-contained HTML run report (:mod:`repro.obs.html`)."""

from __future__ import annotations

import re

import pytest

from repro.analysis.report import ExperimentResult
from repro.core import RatelPolicy
from repro.hardware import EVALUATION_SERVER
from repro.models import llm
from repro.obs.html import (
    lane_class,
    render_run_report,
    timeline_svg,
    write_run_report,
)
from repro.obs.ledger import entry_from_outcome
from repro.runner import Sweep


@pytest.fixture(scope="module")
def outcome():
    return Sweep().evaluate(
        RatelPolicy(), llm("13B"), 8, EVALUATION_SERVER, detail=True
    )


@pytest.fixture(scope="module")
def html(outcome):
    entries = [entry_from_outcome(outcome, server=EVALUATION_SERVER)]
    table = ExperimentResult(
        experiment="sweep", title="demo grid", columns=["model", "tokens/s"]
    )
    table.add_row("13B", 594.0)
    return render_run_report(
        title="Ratel / 13B batch 8",
        subtitle="RTX 4090",
        outcome=outcome,
        entries=entries,
        tables=[table],
    )


class TestSelfContained:
    def test_no_network_or_cdn_references(self, html):
        # The only absolute URL allowed is the SVG xmlns identifier.
        urls = set(re.findall(r"https?://[^\"' <>]+", html))
        assert urls <= {"http://www.w3.org/2000/svg"}

    def test_no_javascript(self, html):
        assert "<script" not in html.lower()

    def test_single_complete_document(self, html):
        assert html.startswith("<!DOCTYPE html>")
        assert html.rstrip().endswith("</html>")

    def test_dark_mode_styles_included(self, html):
        assert "prefers-color-scheme: dark" in html


class TestReportContent:
    def test_title_and_subtitle(self, html):
        assert "Ratel / 13B batch 8" in html
        assert "RTX 4090" in html

    def test_timeline_svg_with_lanes_and_stages(self, html):
        assert "<svg" in html
        for lane in ("gpu0", "ssd", "cpu_adam"):
            assert lane in html
        assert "forward" in html and "backward" in html

    def test_utilization_bars(self, html):
        assert "bar-fill" in html
        assert "busy" in html

    def test_planned_vs_actual_table(self, html):
        assert "Planned vs actual" in html
        assert "drift" in html

    def test_ledger_history_section(self, html):
        assert "Run ledger" in html
        assert "evaluate:Ratel/13B/b8@" in html

    def test_grid_tables_embedded(self, html):
        assert "demo grid" in html

    def test_headline_stat_tiles(self, html):
        assert "iteration time" in html
        assert "tokens per s" in html


class TestTimelineSvg:
    def test_intervals_carry_tooltips(self, outcome):
        result = outcome.require_result()
        svg = timeline_svg(result.trace, result.stage_windows)
        assert "<title>" in svg
        assert svg.count("<rect") > 50

    def test_empty_trace_degrades(self):
        from repro.sim import Trace

        rendered = timeline_svg(Trace(), {})
        assert "empty trace" in rendered  # graceful note, no crash


class TestLaneClass:
    @pytest.mark.parametrize(
        ("lane", "cls"),
        [
            ("gpu0", "c1"),
            ("pcie_m2g0", "c2"),
            ("pcie_g2m1", "c3"),
            ("ssd", "c4"),
            ("cpu_adam", "c5"),
            ("rt_step", "c7"),
            ("mystery", "c6"),
        ],
    )
    def test_stable_palette_assignment(self, lane, cls):
        assert lane_class(lane) == cls


class TestWriteRunReport:
    def test_writes_file(self, tmp_path, outcome):
        path = str(tmp_path / "report.html")
        write_run_report(path, title="t", outcome=outcome)
        text = open(path).read()
        assert text.startswith("<!DOCTYPE html>")
        assert "<svg" in text

    def test_report_without_outcome(self, tmp_path):
        # A ledger-only report (no fresh simulation) still renders.
        html = render_run_report(title="history only")
        assert "history only" in html
        assert "<script" not in html
