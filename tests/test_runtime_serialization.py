"""Tests for checkpoint save/resume and gradient accumulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import (
    CrossEntropyLoss,
    GPTModel,
    RatelOptimizer,
    ratel_hook,
    ratel_init,
)
from repro.runtime.serialization import CheckpointError, load_checkpoint, save_checkpoint

GB = 1e9
VOCAB, DIM, LAYERS, HEADS, SEQ = 29, 16, 2, 2, 8


def batches(n, seed=11):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        ids = rng.integers(0, VOCAB, size=(4, SEQ))
        out.append((ids, np.roll(ids, -1, axis=1)))
    return out


class TestCheckpointRoundtrip:
    def test_resume_is_bit_exact(self, tmp_path):
        """train 4 steps == train 2, save, restore into a fresh run, train 2."""
        loss_fn = CrossEntropyLoss()
        data = batches(4)
        path = str(tmp_path / "ckpt.npz")

        # Uninterrupted reference.
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(1))
            runtime = ratel_hook(model)
            RatelOptimizer(model, runtime, lr=1e-2)
            for ids, targets in data:
                runtime.train_step(lambda: loss_fn(model(ids), targets))
            reference = {n: p.data.copy() for n, p in model.named_parameters()}

        # Interrupted: 2 steps, save, rebuild everything, load, 2 more.
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(1))
            runtime = ratel_hook(model)
            optimizer = RatelOptimizer(model, runtime, lr=1e-2)
            for ids, targets in data[:2]:
                runtime.train_step(lambda: loss_fn(model(ids), targets))
            save_checkpoint(path, optimizer.cpu_adam, step=2)

        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(99))
            runtime = ratel_hook(model)
            optimizer = RatelOptimizer(model, runtime, lr=1e-2)
            step = load_checkpoint(path, model, optimizer.cpu_adam)
            assert step == 2
            for ids, targets in data[2:]:
                runtime.train_step(lambda: loss_fn(model(ids), targets))
            resumed = {n: p.data.copy() for n, p in model.named_parameters()}

        for name in reference:
            np.testing.assert_array_equal(reference[name], resumed[name])

    def test_mismatched_model_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(1))
            runtime = ratel_hook(model)
            optimizer = RatelOptimizer(model, runtime)
            save_checkpoint(path, optimizer.cpu_adam)
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            other = GPTModel(VOCAB, DIM, LAYERS + 1, HEADS, SEQ, np.random.default_rng(1))
            runtime = ratel_hook(other)
            optimizer = RatelOptimizer(other, runtime)
            with pytest.raises(CheckpointError):
                load_checkpoint(path, other, optimizer.cpu_adam)


class TestGradientAccumulation:
    @staticmethod
    def _run(accumulate: bool, micro: int = 4):
        loss_fn = CrossEntropyLoss()
        rng = np.random.default_rng(11)
        ids = rng.integers(0, VOCAB, size=(8, SEQ))
        targets = np.roll(ids, -1, axis=1)
        with ratel_init(
            gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB,
            checkpoint_tier="host",
        ):
            model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(4))
            runtime = ratel_hook(model)
            RatelOptimizer(model, runtime, lr=1e-2)
            for _step in range(3):
                if accumulate:
                    size = 8 // micro
                    parts = [
                        (ids[i * size : (i + 1) * size], targets[i * size : (i + 1) * size])
                        for i in range(micro)
                    ]
                    runtime.train_step_accumulate(
                        [(lambda a=a, b=b: loss_fn(model(a), b)) for a, b in parts]
                    )
                else:
                    runtime.train_step(lambda: loss_fn(model(ids), targets))
            return {n: p.data.copy() for n, p in model.named_parameters()}

    def test_accumulated_equals_full_batch(self):
        full = self._run(accumulate=False)
        accumulated = self._run(accumulate=True)
        for name in full:
            np.testing.assert_array_equal(full[name], accumulated[name])

    def test_one_optimizer_step_per_accumulated_batch(self):
        loss_fn = CrossEntropyLoss()
        rng = np.random.default_rng(0)
        ids = rng.integers(0, VOCAB, size=(4, SEQ))
        targets = np.roll(ids, -1, axis=1)
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(4))
            runtime = ratel_hook(model)
            optimizer = RatelOptimizer(model, runtime)
            runtime.train_step_accumulate(
                [lambda: loss_fn(model(ids), targets) for _ in range(3)]
            )
            assert all(count == 1 for count in optimizer.cpu_adam.step_counts.values())

    def test_empty_micro_batches_rejected(self):
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(4))
            runtime = ratel_hook(model)
            RatelOptimizer(model, runtime)
            with pytest.raises(ValueError):
                runtime.train_step_accumulate([])
