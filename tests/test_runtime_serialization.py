"""Tests for checkpoint save/resume and gradient accumulation."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.faults import FaultInjected
from repro.runtime import (
    CrossEntropyLoss,
    GPTModel,
    PeriodicCheckpointer,
    RatelOptimizer,
    checkpoint_path,
    checkpoint_step_path,
    latest_checkpoint,
    list_checkpoints,
    ratel_hook,
    ratel_init,
)
from repro.runtime.serialization import CheckpointError, load_checkpoint, save_checkpoint

GB = 1e9
VOCAB, DIM, LAYERS, HEADS, SEQ = 29, 16, 2, 2, 8


def batches(n, seed=11):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        ids = rng.integers(0, VOCAB, size=(4, SEQ))
        out.append((ids, np.roll(ids, -1, axis=1)))
    return out


class TestCheckpointRoundtrip:
    def test_resume_is_bit_exact(self, tmp_path):
        """train 4 steps == train 2, save, restore into a fresh run, train 2."""
        loss_fn = CrossEntropyLoss()
        data = batches(4)
        path = str(tmp_path / "ckpt.npz")

        # Uninterrupted reference.
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(1))
            runtime = ratel_hook(model)
            RatelOptimizer(model, runtime, lr=1e-2)
            for ids, targets in data:
                runtime.train_step(lambda: loss_fn(model(ids), targets))
            reference = {n: p.data.copy() for n, p in model.named_parameters()}

        # Interrupted: 2 steps, save, rebuild everything, load, 2 more.
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(1))
            runtime = ratel_hook(model)
            optimizer = RatelOptimizer(model, runtime, lr=1e-2)
            for ids, targets in data[:2]:
                runtime.train_step(lambda: loss_fn(model(ids), targets))
            save_checkpoint(path, optimizer.cpu_adam, step=2)

        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(99))
            runtime = ratel_hook(model)
            optimizer = RatelOptimizer(model, runtime, lr=1e-2)
            step = load_checkpoint(path, model, optimizer.cpu_adam)
            assert step == 2
            for ids, targets in data[2:]:
                runtime.train_step(lambda: loss_fn(model(ids), targets))
            resumed = {n: p.data.copy() for n, p in model.named_parameters()}

        for name in reference:
            np.testing.assert_array_equal(reference[name], resumed[name])

    def test_mismatched_model_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(1))
            runtime = ratel_hook(model)
            optimizer = RatelOptimizer(model, runtime)
            save_checkpoint(path, optimizer.cpu_adam)
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            other = GPTModel(VOCAB, DIM, LAYERS + 1, HEADS, SEQ, np.random.default_rng(1))
            runtime = ratel_hook(other)
            optimizer = RatelOptimizer(other, runtime)
            with pytest.raises(CheckpointError):
                load_checkpoint(path, other, optimizer.cpu_adam)


def fresh_training(lr=1e-2, seed=1, dim=DIM):
    """Model + runtime + optimizer inside the ambient ratel context."""
    model = GPTModel(VOCAB, dim, LAYERS, HEADS, SEQ, np.random.default_rng(seed))
    runtime = ratel_hook(model)
    optimizer = RatelOptimizer(model, runtime, lr=lr)
    return model, runtime, optimizer


class TestCheckpointFailurePaths:
    """S3: every bad-checkpoint shape raises an actionable CheckpointError."""

    def test_missing_file(self, tmp_path):
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model, _, optimizer = fresh_training()
            with pytest.raises(CheckpointError, match="does not exist"):
                load_checkpoint(str(tmp_path / "nope.npz"), model, optimizer.cpu_adam)

    def test_truncated_file(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model, _, optimizer = fresh_training()
            save_checkpoint(path, optimizer.cpu_adam)
            payload = open(path, "rb").read()
            with open(path, "wb") as handle:
                handle.write(payload[: len(payload) // 2])
            with pytest.raises(CheckpointError, match="unreadable"):
                load_checkpoint(path, model, optimizer.cpu_adam)

    def test_no_version_marker(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        np.savez(path, stray=np.zeros(3))
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model, _, optimizer = fresh_training()
            with pytest.raises(CheckpointError, match="version marker"):
                load_checkpoint(path, model, optimizer.cpu_adam)

    def test_unsupported_version(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        np.savez(path, __version__=np.array([99]), __step__=np.array([0]))
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model, _, optimizer = fresh_training()
            with pytest.raises(CheckpointError, match="version 99"):
                load_checkpoint(path, model, optimizer.cpu_adam)

    def test_shape_mismatch_names_the_configuration(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            _, _, optimizer = fresh_training(dim=DIM)
            save_checkpoint(path, optimizer.cpu_adam)
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model, _, optimizer = fresh_training(dim=2 * DIM)
            with pytest.raises(CheckpointError, match="different model configuration"):
                load_checkpoint(path, model, optimizer.cpu_adam)

    def test_failed_load_leaves_training_state_untouched(self, tmp_path):
        """Validation runs before installation: a bad file mutates nothing."""
        loss_fn = CrossEntropyLoss()
        [(ids, targets)] = batches(1)
        path = str(tmp_path / "ckpt.npz")
        np.savez(path, __version__=np.array([99]), __step__=np.array([0]))
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model, runtime, optimizer = fresh_training()
            runtime.train_step(lambda: loss_fn(model(ids), targets))
            params_before = {n: p.data.copy() for n, p in model.named_parameters()}
            masters_before = {
                n: optimizer.cpu_adam.master_weights(n) for n in optimizer.cpu_adam.params
            }
            with pytest.raises(CheckpointError):
                load_checkpoint(path, model, optimizer.cpu_adam)
            for name, param in model.named_parameters():
                np.testing.assert_array_equal(param.data, params_before[name])
            for name in masters_before:
                np.testing.assert_array_equal(
                    optimizer.cpu_adam.master_weights(name), masters_before[name]
                )


class TestAtomicSave:
    def test_save_returns_npz_path_and_cleans_tmp(self, tmp_path):
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            _, _, optimizer = fresh_training()
            final = save_checkpoint(str(tmp_path / "ckpt"), optimizer.cpu_adam)
        assert final.endswith(".npz")
        assert os.path.exists(final)
        assert not [name for name in os.listdir(tmp_path) if name.endswith(".tmp")]

    def test_interrupted_save_preserves_previous_checkpoint(self, tmp_path, monkeypatch):
        path = str(tmp_path / "ckpt.npz")
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model, _, optimizer = fresh_training()
            save_checkpoint(path, optimizer.cpu_adam, step=1)
            good = open(path, "rb").read()

            def torn_write(handle, **payload):
                handle.write(b"partial")
                raise OSError("disk full")

            monkeypatch.setattr(np, "savez", torn_write)
            with pytest.raises(OSError):
                save_checkpoint(path, optimizer.cpu_adam, step=2)
            monkeypatch.undo()

            assert open(path, "rb").read() == good  # previous file untouched
            assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
            assert load_checkpoint(path, model, optimizer.cpu_adam) == 1


class TestPeriodicCheckpointer:
    def test_cadence(self, tmp_path):
        loss_fn = CrossEntropyLoss()
        data = batches(5)
        path = str(tmp_path / "periodic")
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model, runtime, optimizer = fresh_training()
            ckpt = PeriodicCheckpointer(path, optimizer.cpu_adam, every_n_steps=2)
            runtime.add_step_hook(ckpt)
            for ids, targets in data:
                runtime.train_step(lambda ids=ids, targets=targets: loss_fn(model(ids), targets))
            assert ckpt.saved_steps == [2, 4]
            step = load_checkpoint(checkpoint_path(path), model, optimizer.cpu_adam)
            assert step == 4

    def test_invalid_cadence_rejected(self):
        with pytest.raises(ValueError):
            PeriodicCheckpointer("x", optimizer=None, every_n_steps=0)

    def test_invalid_keep_last_rejected(self):
        with pytest.raises(ValueError):
            PeriodicCheckpointer("x", optimizer=None, keep_last=0)

    def test_keep_last_retains_newest_n(self, tmp_path):
        loss_fn = CrossEntropyLoss()
        data = batches(6)
        path = str(tmp_path / "periodic")
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model, runtime, optimizer = fresh_training()
            ckpt = PeriodicCheckpointer(
                path, optimizer.cpu_adam, every_n_steps=2, keep_last=2
            )
            runtime.add_step_hook(ckpt)
            for ids, targets in data:
                runtime.train_step(
                    lambda ids=ids, targets=targets: loss_fn(model(ids), targets)
                )
            assert ckpt.saved_steps == [2, 4, 6]
            # Only the newest two step-stamped files survive the GC.
            kept = list_checkpoints(path)
            assert [step for step, _ in kept] == [4, 6]
            newest = latest_checkpoint(path)
            assert newest == checkpoint_step_path(path, 6)
            assert load_checkpoint(newest, model, optimizer.cpu_adam) == 6

    def test_latest_checkpoint_falls_back_to_legacy_single_file(self, tmp_path):
        path = str(tmp_path / "periodic")
        assert latest_checkpoint(path) is None
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            _, _, optimizer = fresh_training()
            save_checkpoint(checkpoint_path(path), optimizer.cpu_adam, step=3)
        assert latest_checkpoint(path) == checkpoint_path(path)

    def test_crash_during_gc_never_drops_the_newest(self, tmp_path, monkeypatch):
        """The new checkpoint lands atomically *before* GC runs, so a
        crash mid-unlink costs extra disk, never the latest state."""
        from repro.runtime import serialization

        loss_fn = CrossEntropyLoss()
        data = batches(4)
        path = str(tmp_path / "periodic")
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model, runtime, optimizer = fresh_training()
            ckpt = PeriodicCheckpointer(
                path, optimizer.cpu_adam, every_n_steps=1, keep_last=1
            )
            runtime.add_step_hook(ckpt)

            real_unlink = os.unlink

            def flaky_unlink(target):
                # Only checkpoint GC fails; the NVMe spill layer shares
                # the os module and must keep working.
                if ".step" in str(target):
                    raise OSError("simulated crash mid-GC")
                real_unlink(target)

            monkeypatch.setattr(serialization.os, "unlink", flaky_unlink)
            for ids, targets in data:  # GC failure must not fail the step
                runtime.train_step(
                    lambda ids=ids, targets=targets: loss_fn(model(ids), targets)
                )
            monkeypatch.undo()
            assert ckpt.saved_steps == [1, 2, 3, 4]
            newest = latest_checkpoint(path)
            assert newest == checkpoint_step_path(path, 4)
            assert load_checkpoint(newest, model, optimizer.cpu_adam) == 4

    def test_non_callable_hook_rejected(self):
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model, runtime, _ = fresh_training()
            with pytest.raises(TypeError):
                runtime.add_step_hook("not callable")


class TestCrashResume:
    def test_mid_step_crash_resumes_bit_exact(self, tmp_path):
        """The acceptance scenario: training killed mid-step resumes from
        the periodic checkpoint with bit-exact parameters AND optimizer
        state (compared member-for-member through save_checkpoint)."""
        loss_fn = CrossEntropyLoss()
        data = batches(6)
        periodic = str(tmp_path / "periodic")

        # Reference: six uninterrupted steps.
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model, runtime, optimizer = fresh_training()
            for ids, targets in data:
                runtime.train_step(lambda ids=ids, targets=targets: loss_fn(model(ids), targets))
            reference_params = {n: p.data.copy() for n, p in model.named_parameters()}
            ref_state = save_checkpoint(str(tmp_path / "reference"), optimizer.cpu_adam, step=6)

        # Crashy run: checkpoint every 2 steps, power loss mid-step 5.
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model, runtime, optimizer = fresh_training()
            ckpt = PeriodicCheckpointer(periodic, optimizer.cpu_adam, every_n_steps=2)
            runtime.add_step_hook(ckpt)
            with pytest.raises(FaultInjected):
                for step, (ids, targets) in enumerate(data, start=1):

                    def closure(ids=ids, targets=targets, step=step):
                        loss = loss_fn(model(ids), targets)
                        if step == 5:
                            raise FaultInjected("simulated power loss mid-step")
                        return loss

                    runtime.train_step(closure)
            assert ckpt.saved_steps == [2, 4]  # step 5 never completed

        # Restart from the newest complete checkpoint; replay steps 5-6.
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model, runtime, optimizer = fresh_training(seed=77)  # wrong init: must be overwritten
            step = load_checkpoint(checkpoint_path(periodic), model, optimizer.cpu_adam)
            assert step == 4
            for ids, targets in data[step:]:
                runtime.train_step(lambda ids=ids, targets=targets: loss_fn(model(ids), targets))
            resumed_params = {n: p.data.copy() for n, p in model.named_parameters()}
            res_state = save_checkpoint(str(tmp_path / "resumed"), optimizer.cpu_adam, step=6)

        for name in reference_params:
            np.testing.assert_array_equal(reference_params[name], resumed_params[name])
        with np.load(ref_state) as ref, np.load(res_state) as res:
            assert set(ref.files) == set(res.files)
            for key in ref.files:
                np.testing.assert_array_equal(ref[key], res[key], err_msg=key)


class TestGradientAccumulation:
    @staticmethod
    def _run(accumulate: bool, micro: int = 4):
        loss_fn = CrossEntropyLoss()
        rng = np.random.default_rng(11)
        ids = rng.integers(0, VOCAB, size=(8, SEQ))
        targets = np.roll(ids, -1, axis=1)
        with ratel_init(
            gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB,
            checkpoint_tier="host",
        ):
            model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(4))
            runtime = ratel_hook(model)
            RatelOptimizer(model, runtime, lr=1e-2)
            for _step in range(3):
                if accumulate:
                    size = 8 // micro
                    parts = [
                        (ids[i * size : (i + 1) * size], targets[i * size : (i + 1) * size])
                        for i in range(micro)
                    ]
                    runtime.train_step_accumulate(
                        [(lambda a=a, b=b: loss_fn(model(a), b)) for a, b in parts]
                    )
                else:
                    runtime.train_step(lambda: loss_fn(model(ids), targets))
            return {n: p.data.copy() for n, p in model.named_parameters()}

    def test_accumulated_equals_full_batch(self):
        full = self._run(accumulate=False)
        accumulated = self._run(accumulate=True)
        for name in full:
            np.testing.assert_array_equal(full[name], accumulated[name])

    def test_one_optimizer_step_per_accumulated_batch(self):
        loss_fn = CrossEntropyLoss()
        rng = np.random.default_rng(0)
        ids = rng.integers(0, VOCAB, size=(4, SEQ))
        targets = np.roll(ids, -1, axis=1)
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(4))
            runtime = ratel_hook(model)
            optimizer = RatelOptimizer(model, runtime)
            runtime.train_step_accumulate(
                [lambda: loss_fn(model(ids), targets) for _ in range(3)]
            )
            assert all(count == 1 for count in optimizer.cpu_adam.step_counts.values())

    def test_empty_micro_batches_rejected(self):
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(4))
            runtime = ratel_hook(model)
            RatelOptimizer(model, runtime)
            with pytest.raises(ValueError):
                runtime.train_step_accumulate([])
