"""Tests for the per-link traffic accounting (Fig. 1's byte annotations)."""

from __future__ import annotations

import pytest

from repro.experiments import traffic_report


class TestTrafficReport:
    @pytest.fixture(scope="class")
    def result(self):
        return traffic_report.run()

    def test_zero_infinity_moves_interblock_only(self, result):
        """Paper: ~12.5 GB of inter-block activations."""
        row = next(r for r in result.rows if r[0] == "ZeRO-Infinity")
        assert row[1] == pytest.approx(13.8, rel=0.10)

    def test_g10_moves_everything(self, result):
        """Paper: ~213 GB of activations for 13B at batch 32."""
        row = next(r for r in result.rows if r[0] == "G10")
        assert row[1] == pytest.approx(213, rel=0.10)

    def test_ratel_between_the_extremes(self, result):
        by_name = {r[0]: r for r in result.rows}
        assert by_name["ZeRO-Infinity"][1] < by_name["Ratel"][1] < by_name["G10"][1]

    def test_activation_traffic_symmetric(self, result):
        for row in result.rows:
            assert row[1] == pytest.approx(row[2], rel=1e-6)

    def test_model_state_traffic_identical_across_systems(self, result):
        """All three stream the same 26 bytes/param of optimizer state."""
        states = result.column("opt states (SSD)")
        assert max(states) == pytest.approx(min(states), rel=1e-6)
        assert states[0] == pytest.approx(26 * 12.85, rel=0.02)  # 13B params
