"""Tests for the command-line interface and the trace exporter."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.core import RatelPolicy
from repro.hardware import evaluation_server
from repro.models import llm, profile_model
from repro.sim import trace_to_events, write_chrome_trace


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestPlanCommand:
    def test_feasible_plan(self):
        code, text = run_cli("plan", "13B", "32")
        assert code == 0
        assert "token/s" in text
        assert "case" in text

    def test_infeasible_reports_shortfall(self):
        code, text = run_cli("plan", "412B", "1", "--memory-gb", "128")
        assert code == 1
        assert "does NOT fit" in text

    def test_gpu_selection(self):
        code, text = run_cli("plan", "13B", "8", "--gpu", "3090")
        assert code == 0
        assert "RTX 3090" in text


class TestMaxsizeCommand:
    def test_lists_all_systems(self):
        code, text = run_cli("maxsize", "--memory-gb", "256")
        assert code == 0
        for name in ("FlashNeuron", "ZeRO-Infinity", "ZeRO-Offload", "Ratel"):
            assert name in text


class TestExperimentsCommand:
    def test_single_experiment(self):
        code, text = run_cli("experiments", "fig1")
        assert code == 0
        assert "fig1" in text
        assert "ZeRO-Infinity" in text

    def test_unknown_id_fails_with_hint(self):
        code, text = run_cli("experiments", "fig99")
        assert code == 1
        assert "known ids" in text


class TestTraceCommand:
    def test_writes_loadable_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        code, text = run_cli("trace", "13B", "8", "-o", path)
        assert code == 0
        payload = json.load(open(path))
        assert len(payload["traceEvents"]) > 100


class TestTraceExport:
    @pytest.fixture(scope="class")
    def result(self):
        return RatelPolicy().simulate(profile_model(llm("13B"), 8), evaluation_server())

    def test_events_cover_all_resources(self, result):
        events = trace_to_events(result.trace)
        categories = {e.get("cat") for e in events if e.get("ph") == "X"}
        assert {"gpu0", "pcie_m2g0", "pcie_g2m0", "ssd", "cpu_adam"} <= categories

    def test_durations_in_microseconds(self, result):
        events = [e for e in trace_to_events(result.trace) if e.get("ph") == "X"]
        total_gpu_us = sum(e["dur"] for e in events if e.get("cat") == "gpu0")
        assert total_gpu_us == pytest.approx(
            result.trace.busy_time("gpu0") * 1e6, rel=1e-6
        )

    def test_stage_markers_included(self, result, tmp_path):
        path = str(tmp_path / "t.json")
        write_chrome_trace(result.trace, path, stage_windows=result.stage_windows)
        payload = json.load(open(path))
        names = {e["name"] for e in payload["traceEvents"]}
        assert "forward" in names and "backward" in names


class TestObsReportCommand:
    def test_prints_attribution_table(self):
        code, text = run_cli("obs", "report", "13B", "32")
        assert code == 0
        assert "bottleneck attribution" in text
        assert "busy_s" in text and "stall_s" in text
        assert "bound by" in text
        assert "vs plan" in text  # predicted-vs-actual line

    def test_infeasible_point_fails(self):
        code, text = run_cli("obs", "report", "412B", "1", "--memory-gb", "128")
        assert code == 1
        assert "does NOT fit" in text

    def test_baseline_system_has_no_plan_line(self):
        code, text = run_cli("obs", "report", "13B", "32", "--system", "zero-infinity")
        assert code == 0
        assert "ZeRO-Infinity" in text
        assert "vs plan" not in text  # baselines carry no Algorithm-1 estimate

    def test_trace_and_metrics_exports(self, tmp_path):
        trace_path = str(tmp_path / "obs.json")
        metrics_path = str(tmp_path / "obs.prom")
        code, text = run_cli(
            "obs", "report", "13B", "8", "--trace", trace_path, "--metrics", metrics_path
        )
        assert code == 0
        payload = json.load(open(trace_path))
        assert len(payload["traceEvents"]) > 100
        prom = open(metrics_path).read()
        assert "# TYPE sweep_cache_misses_total counter" in prom
