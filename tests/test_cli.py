"""Tests for the command-line interface and the trace exporter."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.core import RatelPolicy
from repro.hardware import evaluation_server
from repro.models import llm, profile_model
from repro.sim import trace_to_events, write_chrome_trace


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestPlanCommand:
    def test_feasible_plan(self):
        code, text = run_cli("plan", "13B", "32")
        assert code == 0
        assert "token/s" in text
        assert "case" in text

    def test_infeasible_reports_shortfall(self):
        code, text = run_cli("plan", "412B", "1", "--memory-gb", "128")
        assert code == 1
        assert "does NOT fit" in text

    def test_gpu_selection(self):
        code, text = run_cli("plan", "13B", "8", "--gpu", "3090")
        assert code == 0
        assert "RTX 3090" in text


class TestMaxsizeCommand:
    def test_lists_all_systems(self):
        code, text = run_cli("maxsize", "--memory-gb", "256")
        assert code == 0
        for name in ("FlashNeuron", "ZeRO-Infinity", "ZeRO-Offload", "Ratel"):
            assert name in text


class TestExperimentsCommand:
    def test_single_experiment(self):
        code, text = run_cli("experiments", "fig1")
        assert code == 0
        assert "fig1" in text
        assert "ZeRO-Infinity" in text

    def test_unknown_id_fails_with_hint(self):
        code, text = run_cli("experiments", "fig99")
        assert code == 1
        assert "known ids" in text


class TestTraceCommand:
    def test_writes_loadable_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        code, text = run_cli("trace", "13B", "8", "-o", path)
        assert code == 0
        payload = json.load(open(path))
        assert len(payload["traceEvents"]) > 100


class TestTraceExport:
    @pytest.fixture(scope="class")
    def result(self):
        return RatelPolicy().simulate(profile_model(llm("13B"), 8), evaluation_server())

    def test_events_cover_all_resources(self, result):
        events = trace_to_events(result.trace)
        categories = {e.get("cat") for e in events if e.get("ph") == "X"}
        assert {"gpu0", "pcie_m2g0", "pcie_g2m0", "ssd", "cpu_adam"} <= categories

    def test_durations_in_microseconds(self, result):
        events = [e for e in trace_to_events(result.trace) if e.get("ph") == "X"]
        total_gpu_us = sum(e["dur"] for e in events if e.get("cat") == "gpu0")
        assert total_gpu_us == pytest.approx(
            result.trace.busy_time("gpu0") * 1e6, rel=1e-6
        )

    def test_stage_markers_included(self, result, tmp_path):
        path = str(tmp_path / "t.json")
        write_chrome_trace(result.trace, path, stage_windows=result.stage_windows)
        payload = json.load(open(path))
        names = {e["name"] for e in payload["traceEvents"]}
        assert "forward" in names and "backward" in names


class TestObsReportCommand:
    def test_prints_attribution_table(self):
        code, text = run_cli("obs", "report", "13B", "32")
        assert code == 0
        assert "bottleneck attribution" in text
        assert "busy_s" in text and "stall_s" in text
        assert "bound by" in text
        assert "vs plan" in text  # predicted-vs-actual line

    def test_infeasible_point_fails(self):
        code, text = run_cli("obs", "report", "412B", "1", "--memory-gb", "128")
        assert code == 1
        assert "does NOT fit" in text

    def test_baseline_system_has_no_plan_line(self):
        code, text = run_cli("obs", "report", "13B", "32", "--system", "zero-infinity")
        assert code == 0
        assert "ZeRO-Infinity" in text
        assert "vs plan" not in text  # baselines carry no Algorithm-1 estimate

    def test_trace_and_metrics_exports(self, tmp_path):
        trace_path = str(tmp_path / "obs.json")
        metrics_path = str(tmp_path / "obs.prom")
        code, text = run_cli(
            "obs", "report", "13B", "8", "--trace", trace_path, "--metrics", metrics_path
        )
        assert code == 0
        payload = json.load(open(trace_path))
        assert len(payload["traceEvents"]) > 100
        prom = open(metrics_path).read()
        assert "# TYPE sweep_cache_misses_total counter" in prom


class TestTraceRoundTrip:
    def test_exported_trace_reads_back(self, tmp_path):
        from repro.sim import read_chrome_trace

        path = str(tmp_path / "trace.json")
        code, _ = run_cli("trace", "13B", "8", "-o", path)
        assert code == 0
        trace, windows = read_chrome_trace(path)
        assert {"forward", "backward"} <= set(windows)
        assert "gpu0" in trace.resources()
        assert trace.busy_time("gpu0") > 0

    def test_round_trip_preserves_busy_time(self, tmp_path):
        from repro.sim import events_to_trace

        result = RatelPolicy().simulate(profile_model(llm("13B"), 8), evaluation_server())
        events = trace_to_events(result.trace, result.stage_windows)
        trace, windows = events_to_trace(events)
        for resource in result.trace.resources():
            assert trace.busy_time(resource) == pytest.approx(
                result.trace.busy_time(resource), rel=1e-9
            )
        assert windows == pytest.approx(result.stage_windows)


class TestObsReportLedger:
    def test_ledger_flag_records_entry(self, tmp_path):
        from repro.obs.ledger import load_ledger

        path = str(tmp_path / "ledger.jsonl")
        code, text = run_cli("obs", "report", "13B", "8", "--ledger", path)
        assert code == 0
        assert f"recorded to {path}" in text
        entry = load_ledger(path).last()
        assert entry.source == "cli"
        assert entry.label.startswith("evaluate:Ratel/13B/b8@")
        assert entry.config_key
        assert entry.attribution() is not None

    def test_without_flag_no_ledger(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, text = run_cli("obs", "report", "13B", "8")
        assert code == 0
        assert "recorded to" not in text


class TestObsDiffCommand:
    def _record(self, path, batch="8"):
        code, _ = run_cli("obs", "report", "13B", batch, "--ledger", path)
        assert code == 0

    def test_ledger_vs_ledger_unchanged(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        self._record(path)
        code, text = run_cli("obs", "diff", path, path)
        assert code == 0
        assert "unchanged" in text

    def test_trace_vs_trace(self, tmp_path):
        path = str(tmp_path / "trace.json")
        code, _ = run_cli("trace", "13B", "8", "-o", path)
        assert code == 0
        code, text = run_cli("obs", "diff", path, path)
        assert code == 0
        assert "iteration:" in text
        assert "trace.json" in text

    def test_mixed_trace_and_ledger(self, tmp_path):
        ledger = str(tmp_path / "ledger.jsonl")
        trace = str(tmp_path / "trace.json")
        self._record(ledger)
        code, _ = run_cli("trace", "13B", "8", "-o", trace)
        assert code == 0
        code, text = run_cli("obs", "diff", trace, ledger)
        assert code == 0
        assert "unchanged" in text

    def test_label_filter_selects_run(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        self._record(path, "8")
        self._record(path, "32")
        label = None
        from repro.obs.ledger import load_ledger

        label = load_ledger(path).entries()[0].label
        code, text = run_cli("obs", "diff", path, path, "--label", label)
        assert code == 0
        assert "b8@" in text and "b32@" not in text

    def test_json_payload_written(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        out_path = str(tmp_path / "diff.json")
        self._record(path)
        code, _ = run_cli("obs", "diff", path, path, "--json", out_path)
        assert code == 0
        payload = json.load(open(out_path))
        assert payload["delta_pct"] == pytest.approx(0.0)
        assert payload["stages"]

    def test_fail_on_regression(self, tmp_path):
        from repro.obs.ledger import RunLedger, load_ledger

        base = str(tmp_path / "base.jsonl")
        slow = str(tmp_path / "slow.jsonl")
        self._record(base)
        entry = load_ledger(base).last()
        entry.metrics = dict(entry.metrics)
        attribution = json.loads(json.dumps(entry.metrics["attribution"]))
        attribution["iteration_time"] *= 1.5
        entry.metrics["attribution"] = attribution
        RunLedger(slow).append(entry)
        code, text = run_cli("obs", "diff", base, slow, "--fail-on-regression")
        assert code == 1
        assert "FAIL" in text
        code, _ = run_cli(
            "obs", "diff", base, slow, "--fail-on-regression", "--threshold-pct", "60"
        )
        assert code == 0

    def test_missing_file_errors(self, tmp_path):
        code, text = run_cli("obs", "diff", str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl"))
        assert code == 2
        assert "error" in text


class TestObsHtmlCommand:
    def test_writes_self_contained_report(self, tmp_path):
        import re

        path = str(tmp_path / "report.html")
        code, text = run_cli("obs", "html", "13B", "8", "-o", path)
        assert code == 0
        assert f"wrote {path}" in text
        html = open(path).read()
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html
        assert "<script" not in html.lower()
        urls = set(re.findall(r"https?://[^\"' <>]+", html))
        assert urls <= {"http://www.w3.org/2000/svg"}

    def test_embeds_ledger_history(self, tmp_path):
        ledger = str(tmp_path / "ledger.jsonl")
        path = str(tmp_path / "report.html")
        code, _ = run_cli("obs", "report", "13B", "8", "--ledger", ledger)
        assert code == 0
        code, _ = run_cli("obs", "html", "13B", "8", "-o", path, "--ledger", ledger)
        assert code == 0
        assert "Run ledger" in open(path).read()

    def test_infeasible_point_fails(self, tmp_path):
        code, text = run_cli(
            "obs", "html", "412B", "1", "--memory-gb", "128",
            "-o", str(tmp_path / "r.html"),
        )
        assert code == 1
        assert "does NOT fit" in text


class TestSweepLedger:
    def test_sweep_ledger_records_grid(self, tmp_path):
        from repro import runner
        from repro.obs.ledger import load_ledger

        path = str(tmp_path / "ledger.jsonl")
        try:
            code, _ = run_cli(
                "sweep", "--models", "13B", "--batches", "8",
                "--systems", "ratel", "--ledger", path,
            )
        finally:
            runner.reset()
        assert code == 0
        entries = load_ledger(path).entries()
        assert len(entries) == 1
        assert entries[0].source == "runner"


class TestSweepAdapt:
    def test_adapt_flag_appends_drill_table(self):
        from repro import runner

        try:
            code, text = run_cli(
                "sweep", "--models", "135B", "--batches", "40",
                "--ssds", "6", "--systems", "ratel", "--adapt",
            )
        finally:
            runner.reset()
        assert code == 0
        assert "sweep-adapt" in text
        # One posture column each for the frozen plan, the controller,
        # and the omniscient replanner — plus the swap count.
        for column in ("stale", "adaptive", "oracle", "swaps"):
            assert column in text


class TestFleetCommand:
    def test_fleet_prints_scorecard(self):
        code, text = run_cli("fleet", "--arrivals", "4", "--show-events", "0")
        assert code == 0
        assert "fleet: sjf over 4 jobs" in text
        assert "makespan" in text and "P99" in text

    def test_fleet_adapt_records_escalation_to_ledger(self, tmp_path):
        from repro import runner
        from repro.obs.ledger import load_ledger

        path = str(tmp_path / "fleet.jsonl")
        try:
            code, text = run_cli(
                "fleet", "--arrivals", "10", "--adapt", "--ledger", path,
            )
        finally:
            runner.reset()
        assert code == 0
        assert "degradations=1" in text
        entries = load_ledger(path).entries()
        fleet_entries = [e for e in entries if e.kind == "fleet"]
        assert fleet_entries, "fleet decisions should land in the ledger"
        decisions = {e.metrics["decision"]["decision"] for e in fleet_entries}
        assert "degrade" in decisions

    def test_fleet_scheduler_choices_enforced(self):
        with pytest.raises(SystemExit):
            run_cli("fleet", "--scheduler", "bogus")

    def test_fleet_journal_flag_writes_wal(self, tmp_path):
        import os

        path = str(tmp_path / "journal.jsonl")
        code, text = run_cli(
            "fleet", "--arrivals", "4", "--show-events", "0", "--journal", path,
        )
        assert code == 0
        assert f"journaled scheduler transitions to {path}" in text
        assert os.path.exists(path)
        with open(path) as handle:
            kinds = [json.loads(line)["rec"] for line in handle]
        assert "submit" in kinds and "finish" in kinds

    def test_fleet_resume_requires_journal(self):
        code, text = run_cli("fleet", "--resume")
        assert code == 2
        assert text.startswith("error:") and "--journal" in text

    def test_fleet_resume_missing_journal_file(self, tmp_path):
        code, text = run_cli(
            "fleet", "--resume", "--journal", str(tmp_path / "nope.jsonl"),
        )
        assert code == 2
        assert text.startswith("error:") and "does not exist" in text

    def test_fleet_resume_empty_journal_file(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_bytes(b'{"rec": "assign", "job_id')  # only a torn tail
        code, text = run_cli("fleet", "--resume", "--journal", str(path))
        assert code == 2
        assert text.startswith("error:")
        assert "no parseable records" in text

    def test_fleet_resume_round_trip(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        code, _ = run_cli(
            "fleet", "--arrivals", "4", "--show-events", "0", "--journal", path,
        )
        assert code == 0
        # Everything already terminal: resume replays the journal, finds
        # nothing to requeue, and drains an empty fleet cleanly.
        code, text = run_cli("fleet", "--resume", "--journal", path)
        assert code == 0
        assert f"resumed from {path}" in text
        assert "4 jobs already terminal" in text
        assert "0 requeued" in text

    def test_fleet_shares_runner_parent_flags(self):
        # The consolidated RunOptions parent parser: fleet accepts the
        # same --cache-dir/--retries/--timeout flags sweep does.
        from repro.cli import build_parser

        for command in ("sweep", "fleet", "experiments"):
            args = build_parser().parse_args([command, "--retries", "2"])
            assert args.retries == 2
        args = build_parser().parse_args(["obs", "report", "13B", "8", "--jobs", "3"])
        assert args.jobs == 3


class TestObsReportTraceId:
    """``obs report --trace-id``: success plus every error path."""

    def _traced_entry(self, trace_id: str):
        from repro.obs.ledger import LedgerEntry

        return LedgerEntry(
            label="evaluate:Ratel/13B/b8@test",
            policy="Ratel",
            model="13B",
            batch_size=8,
            server="test",
            feasible=True,
            metrics={"iteration_s": 1.0},
            trace_id=trace_id,
        )

    def test_missing_ledger_is_one_line_error(self, tmp_path):
        code, text = run_cli(
            "obs", "report", "--trace-id", "a" * 32,
            "--ledger", str(tmp_path / "nope.jsonl"),
        )
        assert code == 2
        assert text.startswith("error:")
        assert len(text.strip().splitlines()) == 1

    def test_empty_ledger_says_how_to_record(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.touch()
        code, text = run_cli("obs", "report", "--trace-id", "a" * 32, "--ledger", str(path))
        assert code == 2
        assert "is empty" in text
        assert "--ledger" in text  # the actionable part

    def test_unknown_trace_id_reports_scan_size(self, tmp_path):
        from repro.obs.ledger import RunLedger

        path = str(tmp_path / "ledger.jsonl")
        RunLedger(path).append(self._traced_entry("b" * 32))
        code, text = run_cli("obs", "report", "--trace-id", "a" * 32, "--ledger", path)
        assert code == 1
        assert "no entries with trace_id" in text
        assert "1 entries scanned" in text

    def test_matching_trace_id_lists_records(self, tmp_path):
        from repro.obs.ledger import RunLedger

        path = str(tmp_path / "ledger.jsonl")
        ledger = RunLedger(path)
        ledger.append(self._traced_entry("a" * 32))
        ledger.append(self._traced_entry("b" * 32))
        code, text = run_cli("obs", "report", "--trace-id", "a" * 32, "--ledger", path)
        assert code == 0
        assert "1 ledger record(s)" in text
        assert "evaluate" in text

    def test_model_and_batch_required_without_trace_id(self):
        code, text = run_cli("obs", "report")
        assert code == 2
        assert "model and batch are required" in text


class TestObsDiffErrors:
    """``obs diff`` on unusable operands: one-line error, non-zero exit."""

    def test_missing_file_error_is_actionable(self, tmp_path):
        code, text = run_cli(
            "obs", "diff", str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        )
        assert code == 2
        assert text.startswith("error:")
        assert "pass a run ledger" in text
        assert len(text.strip().splitlines()) == 1

    def test_empty_ledger_says_how_to_record(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.touch()
        code, text = run_cli("obs", "diff", str(path), str(path))
        assert code == 2
        assert "no ledger entry" in text
        assert "--ledger" in text  # the actionable part


class TestObsProfileCommand:
    def test_profiles_and_writes_all_three_artifacts(self, tmp_path):
        speedscope = str(tmp_path / "p.speedscope.json")
        folded = str(tmp_path / "p.folded.txt")
        summary = str(tmp_path / "p.txt")
        code, text = run_cli(
            "obs", "profile", "6B", "8",
            "-o", speedscope, "--collapsed", folded, "--summary", summary,
        )
        assert code == 0
        assert "cold sweep profile" in text
        doc = json.load(open(speedscope))
        assert doc["profiles"][0]["samples"]
        assert open(folded).read().strip()
        assert "attributed" in open(summary).read()

    def test_infeasible_point_fails(self, tmp_path):
        code, text = run_cli(
            "obs", "profile", "412B", "1", "--memory-gb", "128",
            "-o", str(tmp_path / "p.json"),
        )
        assert code == 1
        assert "does NOT fit" in text
