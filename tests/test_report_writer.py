"""Tests for the EXPERIMENTS.md report primitives (cheap paths only)."""

from __future__ import annotations

from repro.analysis.report import ExperimentResult
from repro.experiments.report_writer import Claim, Section


class TestClaim:
    def test_holding_claim_renders(self):
        text = Claim("X is 2x", "measured 2.1x", True).render()
        assert "paper: X is 2x" in text
        assert "[holds]" in text

    def test_deviating_claim_flagged(self):
        assert "[DEVIATES]" in Claim("a", "b", False).render()


class TestSection:
    def test_renders_claims_and_tables(self):
        table = ExperimentResult("figX", "title", ["a"])
        table.add_row(1.0)
        section = Section("Fig. X", "demo", [Claim("p", "m", True)], [table])
        text = section.render()
        assert text.startswith("## Fig. X — demo")
        assert "```" in text
        assert "figX" in text
