"""Tests for the fault-injection subsystem (:mod:`repro.faults`).

Covers the three substrates the faults package plugs into:

* the **simulator** — :class:`FaultSchedule` events (SSD dropout,
  bandwidth sag, latency stall) perturbing a machine mid-iteration;
* the **machine model** — :meth:`Machine.fail_ssds` / channel derating;
* the **functional storage layer** — :class:`FaultInjector` driving the
  hardened spill/load path (retry, corruption detection, atomicity).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import RatelPolicy
from repro.core.engine import run_iteration
from repro.faults import (
    BandwidthSag,
    FaultInjected,
    FaultInjector,
    FaultSchedule,
    FaultScheduleError,
    FlakyThenSlowPolicy,
    InjectedIOError,
    LatencyStall,
    SSDDropout,
    with_retries,
)
from repro.hardware import evaluation_server
from repro.models import llm, profile_model
from repro.runtime import (
    HOST,
    NVME,
    SpillCorruptionError,
    SpillError,
    StorageManager,
)
from repro.sim.resources import Machine

MB = 10**6


class TestScheduleValidation:
    def test_dropout_rejects_negative_time(self):
        with pytest.raises(FaultScheduleError):
            SSDDropout(at=-1.0)

    def test_dropout_rejects_zero_count(self):
        with pytest.raises(FaultScheduleError):
            SSDDropout(at=1.0, count=0)

    @pytest.mark.parametrize("factor", [0.0, 1.0, 1.5, -0.2])
    def test_sag_factor_must_be_fractional(self, factor):
        with pytest.raises(FaultScheduleError):
            BandwidthSag(at=1.0, duration=2.0, factor=factor)

    def test_sag_rejects_nonpositive_duration(self):
        with pytest.raises(FaultScheduleError):
            BandwidthSag(at=1.0, duration=0.0, factor=0.5)

    def test_stall_rejects_nonpositive_duration(self):
        with pytest.raises(FaultScheduleError):
            LatencyStall(at=1.0, duration=-1.0)

    def test_schedule_truthiness(self):
        assert not FaultSchedule(())
        assert FaultSchedule((SSDDropout(at=1.0),))


class TestScheduleComposition:
    """A schedule is a *set* of physically distinct faults — duplicates
    and same-channel window overlaps are authoring errors, not scenarios."""

    def test_duplicate_event_rejected(self):
        event = SSDDropout(at=5.0, count=2)
        with pytest.raises(FaultScheduleError, match="duplicate"):
            FaultSchedule((event, event))

    def test_duplicate_by_value_rejected(self):
        # Frozen dataclasses compare by value: two separately constructed
        # but identical events are still the same fault scheduled twice.
        with pytest.raises(FaultScheduleError, match="duplicate"):
            FaultSchedule(
                (
                    BandwidthSag(at=1.0, duration=2.0, factor=0.5),
                    BandwidthSag(at=1.0, duration=2.0, factor=0.5),
                )
            )

    def test_overlapping_sags_on_one_channel_rejected(self):
        with pytest.raises(FaultScheduleError, match="overlapping"):
            FaultSchedule(
                (
                    BandwidthSag(at=0.0, duration=10.0, factor=0.5),
                    BandwidthSag(at=5.0, duration=10.0, factor=0.25),
                )
            )

    def test_overlapping_stalls_on_one_channel_rejected(self):
        with pytest.raises(FaultScheduleError, match="overlapping"):
            FaultSchedule(
                (
                    LatencyStall(at=2.0, duration=3.0),
                    LatencyStall(at=4.0, duration=1.0),
                )
            )

    def test_back_to_back_windows_are_not_an_overlap(self):
        # [0, 5) then [5, 8): the first window has ended when the second
        # begins, so the derates never compound.
        assert FaultSchedule(
            (
                BandwidthSag(at=0.0, duration=5.0, factor=0.5),
                BandwidthSag(at=5.0, duration=3.0, factor=0.5),
            )
        )

    def test_different_event_types_may_overlap(self):
        # A sag during a stall is a meaningful compound scenario.
        assert FaultSchedule(
            (
                BandwidthSag(at=0.0, duration=10.0, factor=0.5),
                LatencyStall(at=5.0, duration=2.0),
            )
        )

    def test_same_type_on_different_channels_may_overlap(self):
        assert FaultSchedule(
            (
                BandwidthSag(at=0.0, duration=10.0, factor=0.5, resource="ssd"),
                BandwidthSag(at=5.0, duration=10.0, factor=0.5, resource="host"),
            )
        )


class TestFlakyThenSlowPolicy:
    """The retry/timeout chaos probe: raise once, then dawdle forever."""

    def test_first_attempt_raises_then_retries_sleep(self, tmp_path):
        policy = FlakyThenSlowPolicy(str(tmp_path), delay_s=0.05)
        profile = profile_model(llm("13B"), 8)
        server = evaluation_server()
        with pytest.raises(FaultInjected):
            policy.evaluate(profile, server)
        started = time.perf_counter()
        outcome = policy.evaluate(profile, server)
        assert time.perf_counter() - started >= 0.05
        assert not outcome.feasible  # chaos policies never really train

    def test_rejects_negative_delay(self, tmp_path):
        with pytest.raises(ValueError):
            FlakyThenSlowPolicy(str(tmp_path), delay_s=-1.0)


@pytest.fixture(scope="module")
def workload():
    """A compiled Ratel schedule that genuinely uses the SSD lane."""
    server = evaluation_server().with_ssds(6)
    profile = profile_model(llm("135B"), 40)
    schedule = RatelPolicy().compile(profile, server)
    return server, schedule


class TestSimulatedFaults:
    def test_dropout_slows_iteration(self, workload):
        server, schedule = workload
        healthy = run_iteration(server, schedule).iteration_time
        faults = FaultSchedule((SSDDropout(at=5.0, count=2),))
        degraded = run_iteration(server, schedule, faults=faults).iteration_time
        assert degraded > healthy

    def test_more_failures_cost_more(self, workload):
        server, schedule = workload
        one = run_iteration(
            server, schedule, faults=FaultSchedule((SSDDropout(at=5.0, count=1),))
        ).iteration_time
        four = run_iteration(
            server, schedule, faults=FaultSchedule((SSDDropout(at=5.0, count=4),))
        ).iteration_time
        assert four > one

    def test_bandwidth_sag_slows_iteration(self, workload):
        server, schedule = workload
        healthy = run_iteration(server, schedule).iteration_time
        faults = FaultSchedule((BandwidthSag(at=1.0, duration=220.0, factor=0.2),))
        sagged = run_iteration(server, schedule, faults=faults).iteration_time
        assert sagged > healthy

    def test_latency_stall_slows_iteration(self, workload):
        server, schedule = workload
        healthy = run_iteration(server, schedule).iteration_time
        faults = FaultSchedule((LatencyStall(at=5.0, duration=10.0),))
        stalled = run_iteration(server, schedule, faults=faults).iteration_time
        assert stalled > healthy

    def test_fault_runs_are_deterministic(self, workload):
        server, schedule = workload
        faults = FaultSchedule((SSDDropout(at=5.0, count=2),))
        a = run_iteration(server, schedule, faults=faults).iteration_time
        b = run_iteration(server, schedule, faults=faults).iteration_time
        assert a == b

    def test_empty_schedule_is_a_noop(self, workload):
        server, schedule = workload
        healthy = run_iteration(server, schedule).iteration_time
        empty = run_iteration(server, schedule, faults=FaultSchedule(())).iteration_time
        assert empty == healthy

    def test_faults_recorded_in_trace(self, workload):
        server, schedule = workload
        faults = FaultSchedule((SSDDropout(at=5.0, count=1),))
        trace = run_iteration(server, schedule, faults=faults).trace
        labels = {interval.label for interval in trace.intervals}
        assert any("fault" in label for label in labels)


class TestMachineFaults:
    def test_fail_ssds_reduces_bandwidth(self):
        # Six drives: below the platform cap, so each loss costs bandwidth.
        machine = Machine(evaluation_server().with_ssds(6))
        before = machine.ssd.read_bw
        machine.fail_ssds(3)
        assert machine.failed_ssds == 3
        assert machine.ssd.read_bw < before

    def test_losing_every_drive_zeroes_the_array(self, server):
        machine = Machine(server)
        machine.fail_ssds(server.n_ssds)
        assert machine.ssd.read_bw == 0.0
        assert machine.ssd.write_bw == 0.0

    def test_channel_lookup(self, server):
        machine = Machine(server)
        assert machine.channel("ssd") is machine.ssd
        assert machine.channel("gpu") is machine.channel("gpu0")
        machine.channel("pcie_m2g")
        with pytest.raises(KeyError):
            machine.channel("quantum_link")

    def test_derate_is_multiplicative_and_reversible(self, server):
        machine = Machine(server)
        channel = machine.channel("pcie_m2g")
        base = channel.rate
        channel.derate(0.5)
        assert channel.rate == pytest.approx(base * 0.5)
        channel.derate(1 / 0.5)
        assert channel.rate == pytest.approx(base)


class TestFaultInjector:
    @pytest.mark.parametrize("field", ["read_error_rate", "write_error_rate", "corrupt_rate"])
    def test_rates_validated(self, field):
        with pytest.raises(ValueError):
            FaultInjector(**{field: 1.5})

    def test_one_shot_read_faults_fire_exactly(self):
        injector = FaultInjector()
        injector.fail_next_reads(2)
        for _ in range(2):
            with pytest.raises(InjectedIOError):
                injector.on_read("x.npy")
        injector.on_read("x.npy")  # third read is clean
        assert injector.injected_read_errors == 2

    def test_seeded_rates_replay_identically(self):
        def fire_pattern(injector, n=20):
            pattern = []
            for _ in range(n):
                try:
                    injector.on_write("x.npy")
                    pattern.append(False)
                except InjectedIOError:
                    pattern.append(True)
            return pattern

        a = fire_pattern(FaultInjector(write_error_rate=0.5, seed=7))
        b = fire_pattern(FaultInjector(write_error_rate=0.5, seed=7))
        assert a == b
        assert any(a)


class TestWithRetries:
    def test_recovers_from_transient_failures(self):
        calls, naps = [], []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        result = with_retries(
            flaky, what="test op", retries=3, backoff_s=0.01, sleep=naps.append
        )
        assert result == "ok"
        assert len(calls) == 3
        assert naps == [0.01, 0.02]  # exponential backoff

    def test_exhaustion_reraises_last_error(self):
        def always_fails():
            raise OSError("still broken")

        with pytest.raises(OSError, match="still broken"):
            with_retries(
                always_fails, what="test op", retries=2, backoff_s=0, sleep=lambda s: None
            )

    def test_non_retryable_errors_propagate_immediately(self):
        calls = []

        def wrong_kind():
            calls.append(1)
            raise ValueError("not I/O")

        with pytest.raises(ValueError):
            with_retries(wrong_kind, what="test op", retries=5, sleep=lambda s: None)
        assert len(calls) == 1

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            with_retries(lambda: None, what="test op", retries=-1)


@pytest.fixture
def injector():
    return FaultInjector()


@pytest.fixture
def manager(tmp_path, injector):
    mgr = StorageManager(
        10 * MB,
        10 * MB,
        100 * MB,
        spill_dir=str(tmp_path),
        faults=injector,
        backoff_s=0.0,
        sleep=lambda s: None,
    )
    yield mgr
    mgr.close()


class TestStorageFaults:
    def test_spill_survives_transient_write_errors(self, manager, injector, rng):
        injector.fail_next_writes(2)
        stored = manager.put("x", rng.normal(size=(1000,)), HOST)
        manager.move(stored, NVME)
        assert injector.injected_write_errors == 2
        assert stored.tier == NVME

    def test_load_survives_transient_read_errors(self, manager, injector, rng):
        stored = manager.put("x", rng.normal(size=(1000,)), NVME)
        injector.fail_next_reads(3)  # max_retries=3 -> 4 attempts
        manager.move(stored, HOST)
        assert injector.injected_read_errors == 3
        np.testing.assert_array_equal(stored.data(), stored.data())

    def test_spill_error_after_retry_exhaustion(self, manager, injector, rng):
        stored = manager.put("x", rng.normal(size=(1000,)), HOST)
        injector.fail_next_writes(10)
        with pytest.raises(SpillError):
            manager.move(stored, NVME)
        # The failed move left everything in the source state.
        assert stored.tier == HOST
        assert manager.tiers[NVME].used_bytes == 0
        assert manager.traffic(HOST, NVME) == 0

    def test_failed_put_to_nvme_frees_allocation(self, manager, injector, rng):
        injector.fail_next_writes(10)
        with pytest.raises(SpillError):
            manager.put("x", rng.normal(size=(1000,)), NVME)
        assert manager.tiers[NVME].used_bytes == 0

    def test_corruption_detected_on_load(self, manager, injector, rng):
        injector.corrupt_next_write(1)
        stored = manager.put("x", rng.normal(size=(1000,)), NVME)
        assert injector.injected_corruptions == 1
        with pytest.raises(SpillCorruptionError):
            manager.move(stored, HOST)

    def test_failed_spill_leaves_no_file(self, manager, injector, rng, tmp_path):
        stored = manager.put("x", rng.normal(size=(1000,)), HOST)
        injector.fail_next_writes(10)
        with pytest.raises(SpillError):
            manager.move(stored, NVME)
        assert os.listdir(tmp_path) == []

    def test_fp16_tensor_reloads_at_fp16_width(self, manager, rng):
        stored = manager.put("x", rng.normal(size=(1000,)), HOST, itemsize=2)
        manager.move(stored, NVME)
        manager.move(stored, HOST)
        assert stored.data().dtype == np.float16
        assert stored.nbytes == 2000
        assert manager.tiers[HOST].used_bytes == 2000

    def test_fp32_tensor_reloads_at_fp32_width(self, manager, rng):
        payload = rng.normal(size=(1000,)).astype(np.float32)
        stored = manager.put("x", payload, HOST, itemsize=4)
        manager.move(stored, NVME)
        manager.move(stored, HOST)
        assert stored.data().dtype == np.float32
        np.testing.assert_array_equal(stored.data(), payload)
