"""Smoke tests: every example script runs end to end.

Each example is executed in-process (``runpy``) with small arguments so
the whole set stays fast; stdout is captured and checked for the
signature lines that prove the script did its job.
"""

from __future__ import annotations

import io
import os
import runpy
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name: str, *argv: str) -> str:
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    buffer = io.StringIO()
    old_argv = sys.argv
    sys.argv = [path, *argv]
    try:
        with redirect_stdout(buffer):
            runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv
    return buffer.getvalue()


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart")
        assert "bit-identical" in out
        assert "real data movement" in out

    def test_plan_175b(self):
        out = run_example("plan_175b_on_4090", "13B", "8")
        assert "Ratel's holistic activation plan" in out
        assert "token/s" in out

    def test_activation_sweep(self):
        out = run_example("activation_sweep", "13B", "32", "256")
        assert "Algorithm 1 chose" in out

    def test_train_char_lm(self):
        out = run_example("train_char_lm", "30")
        assert "greedy samples" in out
        assert "total data moved" in out

    def test_hardware_sensitivity(self):
        out = run_example("hardware_sensitivity", "13B", "8")
        assert "number of SSDs" in out
        assert "baseline" in out

    @pytest.mark.slow
    def test_diffusion_finetune(self):
        out = run_example("diffusion_finetune")
        assert "OOM" in out
        assert "Ratel's plan for the 40B DiT" in out

    @pytest.mark.slow
    def test_cost_advisor(self):
        out = run_example("cost_advisor", "13B", "16")
        assert "best value" in out

    @pytest.mark.slow
    def test_production_loop(self):
        out = run_example("production_loop")
        assert "simulated crash" in out
        assert "resumed from step 16" in out
        assert "done:" in out
