"""Tests for the Fig.-4 user API and the analysis helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import ExperimentResult, cost_effectiveness
from repro.hardware import DGX_A100, evaluation_server
from repro.runtime import (
    CrossEntropyLoss,
    GPTModel,
    RatelAPIError,
    RatelOptimizer,
    current_context,
    ratel_hook,
    ratel_init,
)

GB = 1e9


class TestRatelInit:
    def test_context_available_inside(self):
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=GB) as ctx:
            assert current_context() is ctx

    def test_no_context_outside(self):
        with pytest.raises(RatelAPIError):
            current_context()

    def test_nesting(self):
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=GB) as outer:
            with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=GB) as inner:
                assert current_context() is inner
            assert current_context() is outer

    def test_spill_dir_cleaned_up(self):
        import os

        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=GB) as ctx:
            spill_dir = ctx.manager.spill_dir
            assert os.path.isdir(spill_dir)
        assert not os.path.isdir(spill_dir)

    def test_context_isolated_across_threads(self):
        """The ContextVar stack is per-thread: a worker sees no context."""
        from concurrent.futures import ThreadPoolExecutor

        def probe():
            try:
                current_context()
            except RatelAPIError:
                return None
            return current_context()

        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=GB) as ctx:
            assert current_context() is ctx
            with ThreadPoolExecutor(max_workers=1) as pool:
                assert pool.submit(probe).result() is None

    def test_contexts_independent_per_thread(self):
        """Two threads can hold different active contexts concurrently."""
        import threading

        seen = {}
        barrier = threading.Barrier(2)

        def worker(name):
            with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=GB) as ctx:
                barrier.wait()  # both contexts are simultaneously active
                seen[name] = current_context() is ctx
                barrier.wait()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert seen == {0: True, 1: True}


class TestFig4Workflow:
    def test_full_loop_runs_and_learns(self, rng):
        loss_fn = CrossEntropyLoss()
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model = GPTModel(23, 16, 2, 2, 8, rng)
            runtime = ratel_hook(model)
            optimizer = RatelOptimizer(model, runtime, lr=1e-2)
            ids = rng.integers(0, 23, size=(2, 8))
            targets = np.roll(ids, -1, axis=1)
            losses = [
                runtime.train_step(lambda: loss_fn(model(ids), targets))
                for _step in range(4)
            ]
            optimizer.step()  # the paper's no-op
            assert losses[-1] < losses[0]

    def test_hook_requires_context(self, rng):
        model = GPTModel(23, 16, 1, 2, 8, rng)
        with pytest.raises(RatelAPIError):
            ratel_hook(model)

    def test_optimizer_requires_matching_runtime(self, rng):
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=GB):
            model_a = GPTModel(23, 16, 1, 2, 8, rng)
            model_b = GPTModel(23, 16, 1, 2, 8, rng)
            runtime_a = ratel_hook(model_a)
            with pytest.raises(RatelAPIError):
                RatelOptimizer(model_b, runtime_a)


class TestFromContext:
    def test_hook_builds_via_from_context(self, rng):
        """ratel_hook is sugar for RatelRuntime.from_context(...)."""
        from repro.runtime import RatelRuntime

        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=GB) as ctx:
            model = GPTModel(23, 16, 1, 2, 8, rng)
            runtime = RatelRuntime.from_context(model, ctx)
            assert model._ratel_runtime is runtime
            assert runtime.optimizer is None
            assert runtime.checkpoint_tier == ctx.checkpoint_tier
            assert runtime.active_offload == ctx.active_offload

    def test_gradient_before_optimizer_is_an_error(self, rng):
        """A runtime built without an optimizer refuses gradient traffic."""
        from repro.runtime import RatelRuntime

        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=GB) as ctx:
            model = GPTModel(23, 16, 1, 2, 8, rng)
            runtime = RatelRuntime.from_context(model, ctx)
            name, param = next(iter(model.named_parameters()))
            with pytest.raises(RuntimeError, match="no optimizer"):
                runtime._consume_gradient(name, param)

    def test_optimizer_attaches_to_from_context_runtime(self, rng):
        """RatelOptimizer completes a from_context runtime for training."""
        from repro.runtime import RatelRuntime

        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=GB) as ctx:
            model = GPTModel(23, 16, 1, 2, 8, rng)
            runtime = RatelRuntime.from_context(model, ctx)
            optimizer = RatelOptimizer(model, runtime, lr=1e-2)
            assert runtime.optimizer is optimizer.cpu_adam


class TestCostAnalysis:
    def test_tokens_per_kusd(self):
        point = cost_effectiveness("Megatron-LM", DGX_A100, 4000.0)
        assert point.price_usd == pytest.approx(200_000.0)
        assert point.tokens_per_s_per_kusd == pytest.approx(20.0)

    def test_rejects_negative_throughput(self):
        with pytest.raises(ValueError):
            cost_effectiveness("x", DGX_A100, -1.0)

    def test_ratel_server_pricing(self):
        server = evaluation_server(n_gpus=4, n_ssds=6)
        point = cost_effectiveness("Ratel", server, 1000.0)
        assert point.price_usd == pytest.approx(14098 + 4 * 1600 + 6 * 308)


class TestExperimentResult:
    def test_row_length_validated(self):
        result = ExperimentResult("t", "title", ["a", "b"])
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_column_extraction(self):
        result = ExperimentResult("t", "title", ["a", "b"])
        result.add_row(1, 2)
        result.add_row(3, 4)
        assert result.column("b") == [2, 4]

    def test_render_formats_failures_as_dash(self):
        result = ExperimentResult("t", "title", ["a"])
        result.add_row(float("nan"))
        assert "-" in result.render()

    def test_render_includes_notes(self):
        result = ExperimentResult("t", "title", ["a"])
        result.add_row(1.0)
        result.note("hello")
        assert "note: hello" in result.render()
