"""Tests for the Fig.-4 user API and the analysis helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import ExperimentResult, cost_effectiveness
from repro.hardware import DGX_A100, evaluation_server
from repro.runtime import (
    CrossEntropyLoss,
    GPTModel,
    RatelAPIError,
    RatelOptimizer,
    current_context,
    ratel_hook,
    ratel_init,
)

GB = 1e9


class TestRatelInit:
    def test_context_available_inside(self):
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=GB) as ctx:
            assert current_context() is ctx

    def test_no_context_outside(self):
        with pytest.raises(RatelAPIError):
            current_context()

    def test_nesting(self):
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=GB) as outer:
            with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=GB) as inner:
                assert current_context() is inner
            assert current_context() is outer

    def test_spill_dir_cleaned_up(self):
        import os

        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=GB) as ctx:
            spill_dir = ctx.manager.spill_dir
            assert os.path.isdir(spill_dir)
        assert not os.path.isdir(spill_dir)


class TestFig4Workflow:
    def test_full_loop_runs_and_learns(self, rng):
        loss_fn = CrossEntropyLoss()
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model = GPTModel(23, 16, 2, 2, 8, rng)
            runtime = ratel_hook(model)
            optimizer = RatelOptimizer(model, runtime, lr=1e-2)
            ids = rng.integers(0, 23, size=(2, 8))
            targets = np.roll(ids, -1, axis=1)
            losses = [
                runtime.train_step(lambda: loss_fn(model(ids), targets))
                for _step in range(4)
            ]
            optimizer.step()  # the paper's no-op
            assert losses[-1] < losses[0]

    def test_hook_requires_context(self, rng):
        model = GPTModel(23, 16, 1, 2, 8, rng)
        with pytest.raises(RatelAPIError):
            ratel_hook(model)

    def test_optimizer_requires_matching_runtime(self, rng):
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=GB):
            model_a = GPTModel(23, 16, 1, 2, 8, rng)
            model_b = GPTModel(23, 16, 1, 2, 8, rng)
            runtime_a = ratel_hook(model_a)
            with pytest.raises(RatelAPIError):
                RatelOptimizer(model_b, runtime_a)


class TestCostAnalysis:
    def test_tokens_per_kusd(self):
        point = cost_effectiveness("Megatron-LM", DGX_A100, 4000.0)
        assert point.price_usd == pytest.approx(200_000.0)
        assert point.tokens_per_s_per_kusd == pytest.approx(20.0)

    def test_rejects_negative_throughput(self):
        with pytest.raises(ValueError):
            cost_effectiveness("x", DGX_A100, -1.0)

    def test_ratel_server_pricing(self):
        server = evaluation_server(n_gpus=4, n_ssds=6)
        point = cost_effectiveness("Ratel", server, 1000.0)
        assert point.price_usd == pytest.approx(14098 + 4 * 1600 + 6 * 308)


class TestExperimentResult:
    def test_row_length_validated(self):
        result = ExperimentResult("t", "title", ["a", "b"])
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_column_extraction(self):
        result = ExperimentResult("t", "title", ["a", "b"])
        result.add_row(1, 2)
        result.add_row(3, 4)
        assert result.column("b") == [2, 4]

    def test_render_formats_failures_as_dash(self):
        result = ExperimentResult("t", "title", ["a"])
        result.add_row(float("nan"))
        assert "-" in result.render()

    def test_render_includes_notes(self):
        result = ExperimentResult("t", "title", ["a"])
        result.add_row(1.0)
        result.note("hello")
        assert "note: hello" in result.render()
