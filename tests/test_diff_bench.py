"""Tests for the CI regression gate (``benchmarks/diff_bench.py``)."""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

from repro.obs.attribution import attribute
from repro.obs.ledger import LedgerEntry, RunLedger
from repro.sim import Trace

_SPEC = importlib.util.spec_from_file_location(
    "diff_bench",
    os.path.join(os.path.dirname(__file__), "..", "benchmarks", "diff_bench.py"),
)
diff_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(diff_bench)


def _attribution_payload(backward_end: float, ssd_heavy: bool) -> dict:
    trace = Trace()
    trace.record("gpu0", "fwd", 0.0, 1.8, 0.0)
    trace.record("gpu0", "bwd", 2.0, 5.6, 0.0)
    ssd_end = backward_end - 0.2 if ssd_heavy else 4.5
    trace.record("ssd", "swap", 2.5, ssd_end, 0.0)
    windows = {"forward": (0.0, 2.0), "backward": (2.0, backward_end)}
    return attribute(trace, windows).to_payload()


def _write_ledger(path, iteration: float, *, ssd_heavy: bool = False) -> None:
    entry = LedgerEntry(
        label="evaluate:Ratel/13B/b8@test",
        policy="Ratel",
        model="13B",
        batch_size=8,
        server="test",
        feasible=True,
        metrics={
            "iteration_time": iteration,
            "tokens_per_s": 1000.0 / iteration,
            "attribution": _attribution_payload(iteration, ssd_heavy),
        },
        config_key="same-key",
    )
    RunLedger(str(path)).append(entry)


@pytest.fixture
def results_dir(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    return directory


def _gate(results_dir, current, extra=()):
    return diff_bench.main(
        [
            "--results-dir", str(results_dir),
            "--ledger-current", str(current),
            *extra,
        ]
    )


class TestLedgerGate:
    def test_identical_ledgers_pass(self, results_dir, tmp_path, capsys):
        _write_ledger(results_dir / "ledger.jsonl", 6.0)
        _write_ledger(tmp_path / "current.jsonl", 6.0)
        assert _gate(results_dir, tmp_path / "current.jsonl") == 0
        assert "No regressions" in capsys.readouterr().out

    def test_regression_fails(self, results_dir, tmp_path, capsys):
        _write_ledger(results_dir / "ledger.jsonl", 6.0)
        _write_ledger(tmp_path / "current.jsonl", 8.0, ssd_heavy=True)
        assert _gate(results_dir, tmp_path / "current.jsonl") == 1
        out = capsys.readouterr().out
        assert "gate FAILS" in out
        assert "backward" in out  # stage blame named in the report
        assert "ssd" in out

    def test_small_change_under_threshold_passes(self, results_dir, tmp_path):
        _write_ledger(results_dir / "ledger.jsonl", 6.0)
        _write_ledger(tmp_path / "current.jsonl", 6.3)  # +5%
        assert _gate(results_dir, tmp_path / "current.jsonl") == 0

    def test_improvement_passes(self, results_dir, tmp_path):
        _write_ledger(results_dir / "ledger.jsonl", 8.0, ssd_heavy=True)
        _write_ledger(tmp_path / "current.jsonl", 6.0)
        assert _gate(results_dir, tmp_path / "current.jsonl") == 0

    def test_allowlist_waives_regression(self, results_dir, tmp_path, capsys):
        _write_ledger(results_dir / "ledger.jsonl", 6.0)
        _write_ledger(tmp_path / "current.jsonl", 8.0, ssd_heavy=True)
        allowlist = results_dir / "bench_allowlist.json"
        allowlist.write_text(
            json.dumps(
                {
                    "allow": [
                        {
                            "pattern": "evaluate:Ratel/13B/*",
                            "reason": "intentional: larger window",
                        }
                    ]
                }
            )
        )
        assert _gate(results_dir, tmp_path / "current.jsonl") == 0
        assert "allowlisted" in capsys.readouterr().out

    def test_allowlist_pattern_must_match(self, results_dir, tmp_path):
        _write_ledger(results_dir / "ledger.jsonl", 6.0)
        _write_ledger(tmp_path / "current.jsonl", 8.0, ssd_heavy=True)
        allowlist = results_dir / "bench_allowlist.json"
        allowlist.write_text(
            json.dumps({"allow": [{"pattern": "evaluate:Other/*", "reason": "x"}]})
        )
        assert _gate(results_dir, tmp_path / "current.jsonl") == 1

    def test_warn_only_never_fails(self, results_dir, tmp_path):
        _write_ledger(results_dir / "ledger.jsonl", 6.0)
        _write_ledger(tmp_path / "current.jsonl", 9.0, ssd_heavy=True)
        assert _gate(results_dir, tmp_path / "current.jsonl", ["--warn-only"]) == 0

    def test_missing_baseline_skips_gate(self, results_dir, tmp_path, capsys):
        _write_ledger(tmp_path / "current.jsonl", 8.0)
        assert _gate(results_dir, tmp_path / "current.jsonl") == 0
        assert "ledger gate skipped" in capsys.readouterr().out

    def test_threshold_flag(self, results_dir, tmp_path):
        _write_ledger(results_dir / "ledger.jsonl", 6.0)
        _write_ledger(tmp_path / "current.jsonl", 6.3)  # +5%
        code = _gate(results_dir, tmp_path / "current.jsonl", ["--threshold-pct", "4"])
        assert code == 1

    def test_baseline_only_runs_reported_missing(self, results_dir, tmp_path, capsys):
        _write_ledger(results_dir / "ledger.jsonl", 6.0)
        other = tmp_path / "current.jsonl"
        entry = LedgerEntry(
            label="evaluate:Other/30B/b4@test",
            policy="Other", model="30B", batch_size=4, server="test",
            feasible=True, metrics={"iteration_time": 1.0},
        )
        RunLedger(str(other)).append(entry)
        assert _gate(results_dir, other) == 0
        assert "absent from the current ledger" in capsys.readouterr().out


class TestTimingHelpers:
    def test_timing_leaves_flattens_only_seconds(self):
        payload = {
            "a_s": 1.0,
            "nested": {"b_s": 2.0, "count": 7},
            "listed": [{"c_s": 3.0}],
            "not_seconds": 4.0,
        }
        leaves = diff_bench.timing_leaves(payload)
        assert leaves == {"a_s": 1.0, "nested.b_s": 2.0, "listed[0].c_s": 3.0}

    def test_diff_file_threshold(self):
        rows = diff_bench.diff_file(
            "BENCH_x.json", {"t_s": 1.2}, {"t_s": 1.0}, threshold_pct=10.0
        )
        assert rows[0]["regressed"] is True
        assert rows[0]["change_pct"] == pytest.approx(20.0)
        rows = diff_bench.diff_file(
            "BENCH_x.json", {"t_s": 1.05}, {"t_s": 1.0}, threshold_pct=10.0
        )
        assert rows[0]["regressed"] is False

    def test_diff_file_respects_allowlist(self):
        allowlist = [{"pattern": "BENCH_x.json:t_s", "reason": "known"}]
        rows = diff_bench.diff_file(
            "BENCH_x.json", {"t_s": 2.0}, {"t_s": 1.0}, 10.0, allowlist
        )
        assert rows[0]["regressed"] is False
        assert rows[0]["allowed"] == "known"

    def test_timing_regressions_do_not_gate_by_default(self, results_dir, tmp_path):
        # No BENCH files and no ledgers: trivially green.
        assert diff_bench.main(["--results-dir", str(results_dir)]) == 0


class TestAllowlistLoading:
    def test_missing_file_is_empty(self, tmp_path):
        assert diff_bench.load_allowlist(str(tmp_path / "nope.json")) == []

    def test_malformed_entries_dropped(self, tmp_path):
        path = tmp_path / "allow.json"
        path.write_text(
            json.dumps({"allow": [{"reason": "no pattern"}, {"pattern": "ok"}, "junk"]})
        )
        entries = diff_bench.load_allowlist(str(path))
        assert len(entries) == 1
        assert entries[0]["pattern"] == "ok"

    def test_allowed_matches_fnmatch(self):
        allowlist = [{"pattern": "evaluate:Ratel/*", "reason": "r"}]
        assert diff_bench.allowed("evaluate:Ratel/13B/b8@x", allowlist)
        assert diff_bench.allowed("evaluate:ZeRO/13B/b8@x", allowlist) is None
