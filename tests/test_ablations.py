"""Tests for the design-choice ablation experiments."""

from __future__ import annotations

import pytest

from repro.experiments import ablations


class TestPrefetchDepth:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run_prefetch_depth(batches=(32,))

    def test_deeper_prefetch_never_slower(self, result):
        times = result.column("bsz=32")
        for shallow, deep in zip(times, times[1:]):
            assert deep <= shallow + 1e-9

    def test_depth_one_pays_a_real_penalty(self, result):
        times = result.column("bsz=32")
        assert times[0] > 1.2 * times[-1]

    def test_returns_diminish(self, result):
        times = result.column("bsz=32")
        assert times[2] == pytest.approx(times[-1], rel=0.05)  # depth 3 ~ depth 6


class TestSSDEfficiency:
    def test_throughput_monotone_in_efficiency(self):
        result = ablations.run_ssd_efficiency()
        throughput = result.column("token/s")
        assert throughput == sorted(throughput)

    def test_full_rate_engine_near_doubles_70b(self):
        result = ablations.run_ssd_efficiency()
        throughput = result.column("token/s")
        assert throughput[-1] > 1.6 * throughput[0]  # 1.0 vs 0.4 efficiency


class TestOptimizerWindow:
    def test_bigger_window_never_grows_max_size(self):
        result = ablations.run_optimizer_window()
        sizes = result.column("max_size_B")
        for small, large in zip(sizes, sizes[1:]):
            assert large <= small + 1e-9

    def test_window_memory_grows_linearly(self):
        result = ablations.run_optimizer_window()
        windows = result.column("window_blocks")
        use = result.column("window_use_at_175B_GB")
        # Slopes between consecutive points must match (affine in window).
        slopes = [
            (use[i + 1] - use[i]) / (windows[i + 1] - windows[i])
            for i in range(len(use) - 1)
        ]
        assert max(slopes) == pytest.approx(min(slopes), rel=1e-6)


class TestOccupancyModel:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run_occupancy_model()

    def test_flat_peak_is_batch_independent(self, result):
        flat = result.column("flat peak")
        assert max(flat) == pytest.approx(min(flat), rel=0.01)

    def test_occupancy_discounts_small_batches(self, result):
        with_occ = result.column("with occupancy")
        flat = result.column("flat peak")
        occ = result.column("occupancy")
        for achieved, peak, fraction in zip(with_occ, flat, occ):
            assert achieved == pytest.approx(peak * fraction, rel=0.02)

    def test_all_run(self):
        assert len(ablations.run()) == 4
