"""Property-based tests of the discrete-event engine.

Whatever schedule the policies compile — any activation split, optimizer
mode or efficiency — the engine must conserve work, respect resource
rates (time lower bounds), and keep stage windows ordered.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import OptimizerMode, StatesLocation, build_blocks, run_iteration
from repro.core.schedule import IterationSchedule
from repro.hardware import GB, evaluation_server
from repro.models import llm, profile_model

SERVER = evaluation_server()

MODES = st.sampled_from(
    [
        OptimizerMode.ACTIVE_OPTIMIZED,
        OptimizerMode.ACTIVE_NAIVE,
        OptimizerMode.DEFERRED_CPU,
        OptimizerMode.DEFERRED_CPU_SERIAL,
        OptimizerMode.DEFERRED_GPU,
    ]
)


def build_schedule(batch, act_main_gb, act_ssd_gb, recompute_fraction, mode, depth, eff):
    profile = profile_model(llm("6B"), batch)
    act_main = min(act_main_gb * GB, 0.6 * profile.activation_bytes_total)
    act_ssd = min(act_ssd_gb * GB, 0.4 * profile.activation_bytes_total)
    recompute = recompute_fraction * profile.recompute_flops_for(0.0)
    blocks = build_blocks(
        profile,
        act_to_main_total=act_main,
        act_to_ssd_total=act_ssd,
        recompute_flops_total=recompute,
    )
    return IterationSchedule(
        name="property",
        model=profile,
        blocks=blocks,
        states_location=StatesLocation.SSD,
        optimizer_mode=mode,
        prefetch_depth=depth,
        ssd_efficiency=eff,
    )


@given(
    batch=st.sampled_from([1, 4, 16]),
    act_main_gb=st.floats(min_value=0, max_value=50),
    act_ssd_gb=st.floats(min_value=0, max_value=50),
    recompute_fraction=st.floats(min_value=0, max_value=1),
    mode=MODES,
    depth=st.integers(min_value=1, max_value=4),
    eff=st.floats(min_value=0.3, max_value=1.0),
)
@settings(max_examples=30, deadline=None)
def test_engine_invariants(batch, act_main_gb, act_ssd_gb, recompute_fraction, mode, depth, eff):
    schedule = build_schedule(
        batch, act_main_gb, act_ssd_gb, recompute_fraction, mode, depth, eff
    )
    result = run_iteration(SERVER, schedule)
    profile = schedule.model
    trace = result.trace

    # 1. GPU work conservation (forward + backward + recompute [+ GPU Adam]).
    gpu_work = trace.moved("gpu0")
    base = profile.forward_flops + profile.backward_flops + schedule.total_recompute_flops
    assert gpu_work >= base * (1 - 1e-9)
    assert gpu_work <= base * 1.05 + 2 * profile.n_params  # GPU-Adam slack

    # 2. Activation traffic symmetry: everything swapped out comes back.
    out = trace.moved("pcie_g2m0", label_prefix="act_out")
    back = trace.moved("pcie_m2g0", label_prefix="act_back")
    assert out == pytest.approx(schedule.total_swapped, rel=1e-9, abs=1.0)
    assert back == pytest.approx(out, rel=1e-9, abs=1.0)

    # 3. SSD spill symmetry.
    spill_out = trace.moved("ssd", label_prefix="act_spill")
    spill_back = trace.moved("ssd", label_prefix="act_back_ssd")
    assert spill_out == pytest.approx(
        sum(block.act_to_ssd for block in schedule.blocks), rel=1e-9, abs=1.0
    )
    assert spill_back == pytest.approx(spill_out, rel=1e-9, abs=1.0)

    # 4. Time lower bounds: no resource can beat its own rate.
    assert result.iteration_time >= gpu_work / SERVER.gpu.peak_fp16_flops * (1 - 1e-9)
    ssd_moved = trace.moved("ssd")
    assert result.iteration_time >= ssd_moved / (32 * GB) * (1 - 1e-6)

    # 5. Stage windows: ordered, contiguous, covering the run.
    fwd = result.stage_windows["forward"]
    bwd = result.stage_windows["backward"]
    assert fwd[0] == 0.0 and fwd[1] <= bwd[0] + 1e-12
    assert result.iteration_time == pytest.approx(
        max(end for _s, end in result.stage_windows.values())
    )

    # 6. Optimizer updates every parameter exactly once.
    assert trace.moved("cpu_adam") == pytest.approx(
        profile.n_params if mode not in (OptimizerMode.DEFERRED_GPU,) else 0.0,
        rel=1e-9,
        abs=1.0,
    )


@given(
    mode=MODES,
    eff=st.floats(min_value=0.3, max_value=1.0),
)
@settings(max_examples=10, deadline=None)
def test_lower_efficiency_never_faster(mode, eff):
    fast = build_schedule(4, 5, 5, 0.5, mode, 2, 1.0)
    slow = build_schedule(4, 5, 5, 0.5, mode, 2, eff)
    t_fast = run_iteration(SERVER, fast).iteration_time
    t_slow = run_iteration(SERVER, slow).iteration_time
    assert t_slow >= t_fast * (1 - 1e-9)


@given(batch=st.sampled_from([1, 2, 8, 32]))
@settings(max_examples=8, deadline=None)
def test_iteration_time_scales_with_batch(batch):
    """Bigger batches take longer per iteration but fewer per token."""
    small = build_schedule(1, 2, 0, 0.3, OptimizerMode.ACTIVE_OPTIMIZED, 3, 1.0)
    big = build_schedule(batch, 2, 0, 0.3, OptimizerMode.ACTIVE_OPTIMIZED, 3, 1.0)
    t_small = run_iteration(SERVER, small)
    t_big = run_iteration(SERVER, big)
    assert t_big.iteration_time >= t_small.iteration_time * (1 - 1e-9)
    if batch > 1:
        assert t_big.tokens_per_s >= t_small.tokens_per_s * (1 - 1e-9)
