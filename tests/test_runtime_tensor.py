"""Tests for the NumPy autograd engine, including property-based gradchecks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.runtime import AutogradError, Tensor, is_grad_enabled, no_grad


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of a scalar-valued fn."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        hi = fn(x.copy())
        flat[i] = original - eps
        lo = fn(x.copy())
        flat[i] = original
        out[i] = (hi - lo) / (2 * eps)
    return grad


def check_grad(build, shape, rng, atol=2e-2):
    """Compare autograd against numeric differentiation."""
    x = rng.normal(size=shape).astype(np.float32)
    tensor = Tensor(x.copy(), requires_grad=True)
    build(tensor).backward()

    def scalar(data):
        return float(build(Tensor(data)).data)

    expected = numeric_grad(scalar, x.astype(np.float64))
    np.testing.assert_allclose(tensor.grad, expected, atol=atol, rtol=1e-2)


small = arrays(np.float32, (3, 4), elements=st.floats(-2, 2, width=32))


class TestGradChecks:
    def test_add_mul(self, rng):
        check_grad(lambda t: ((t + 2.0) * t).sum(), (3, 4), rng)

    def test_sub_div(self, rng):
        check_grad(lambda t: ((t - 0.5) / 2.0).sum(), (3, 4), rng)

    def test_pow(self, rng):
        check_grad(lambda t: ((t * t + 1.0) ** 0.5).sum(), (3, 4), rng)

    def test_matmul(self, rng):
        w = Tensor(rng.normal(size=(4, 5)).astype(np.float32))
        check_grad(lambda t: (t @ w).sum(), (3, 4), rng)

    def test_matmul_right_operand(self, rng):
        a = Tensor(rng.normal(size=(3, 4)).astype(np.float32))
        check_grad(lambda t: (a @ t).sum(), (4, 5), rng)

    def test_softmax(self, rng):
        w = Tensor(rng.normal(size=(4,)).astype(np.float32))
        check_grad(lambda t: (t.softmax(-1) * w).sum(), (3, 4), rng)

    def test_gelu(self, rng):
        check_grad(lambda t: t.gelu().sum(), (3, 4), rng)

    def test_tanh_exp_log(self, rng):
        check_grad(lambda t: (t.tanh().exp() + (t * t + 1.0).log()).sum(), (3, 4), rng)

    def test_reshape_transpose(self, rng):
        w = Tensor(rng.normal(size=(4, 5)).astype(np.float32))
        check_grad(
            lambda t: (t.transpose(1, 0).transpose(1, 0).reshape(12).reshape(3, 4) @ w).sum(),
            (3, 4),
            rng,
        )

    def test_mean_and_sum_axes(self, rng):
        check_grad(lambda t: (t.mean(axis=1, keepdims=True) * t).sum(), (3, 4), rng)

    def test_embedding(self, rng):
        ids = np.array([[0, 2], [1, 1]])
        check_grad(lambda t: (t.embedding(ids) * 2.0).sum(), (3, 4), rng)

    @given(small)
    @settings(max_examples=15, deadline=None)
    def test_composite_expression_property(self, x):
        tensor = Tensor(x.copy(), requires_grad=True)
        loss = ((tensor @ tensor.transpose(1, 0)).softmax(-1).sum() + tensor.gelu().mean())
        loss.backward()

        def scalar(data):
            t = Tensor(data)
            return float(
                ((t @ t.transpose(1, 0)).softmax(-1).sum() + t.gelu().mean()).data
            )

        expected = numeric_grad(scalar, x.astype(np.float64))
        np.testing.assert_allclose(tensor.grad, expected, atol=5e-2, rtol=5e-2)


class TestBroadcasting:
    def test_bias_broadcast_accumulates(self, rng):
        bias = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        x = Tensor(rng.normal(size=(3, 4)).astype(np.float32))
        (x + bias).sum().backward()
        np.testing.assert_allclose(bias.grad, np.full(4, 3.0))

    def test_keepdims_broadcast(self, rng):
        scale = Tensor(np.ones((3, 1), dtype=np.float32), requires_grad=True)
        x = Tensor(rng.normal(size=(3, 4)).astype(np.float32))
        (x * scale).sum().backward()
        np.testing.assert_allclose(scale.grad, x.data.sum(axis=1, keepdims=True), rtol=1e-5)


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        (x * 2 + x * 3).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(3, 5.0))

    def test_backward_without_requires_grad_raises(self):
        with pytest.raises(AutogradError):
            Tensor(np.ones(3)).backward()

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = (x * 2).sum()
        assert not y.requires_grad
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_hooks_fire_once_per_backward(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        fired = []
        x.register_hook(lambda t: fired.append(t.grad.copy()))
        # x used twice: the hook must fire once, after both contributions.
        (x * 2 + x).sum().backward()
        assert len(fired) == 1
        np.testing.assert_allclose(fired[0], np.full(3, 3.0))

    def test_hook_order_is_reverse_topological(self):
        order = []
        a = Tensor(np.ones(2, dtype=np.float32), requires_grad=True, name="a")
        b = Tensor(np.ones(2, dtype=np.float32), requires_grad=True, name="b")
        a.register_hook(lambda t: order.append("a"))
        b.register_hook(lambda t: order.append("b"))
        # b enters the graph later (closer to the loss): its gradient
        # completes first — the arrival order §IV-C relies on.
        ((a * 2).tanh() * b).sum().backward()
        assert order == ["b", "a"]

    def test_repr_mentions_name(self):
        assert "alpha" in repr(Tensor(np.ones(2), name="alpha"))
