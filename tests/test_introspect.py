"""Tests for model introspection (the §IV-B 'parse the model' step)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import IntrospectionError, profile_from_module, profile_model
from repro.models.config import TransformerConfig
from repro.runtime import DiTModel, GPTModel


class TestGPTIntrospection:
    @pytest.fixture(scope="class")
    def model(self):
        return GPTModel(997, 128, 3, 4, 64, np.random.default_rng(0))

    def test_architecture_recovered(self, model):
        profile = profile_from_module(model, 4)
        config = profile.config
        assert config.n_layers == 3
        assert config.hidden_dim == 128
        assert config.n_heads == 4
        assert config.seq_len == 64
        assert config.vocab_size == 997
        assert not config.tie_embeddings

    def test_param_count_within_one_percent(self, model):
        """The closed form carries lower-order terms tuned for large h;
        at toy widths the residual is <1% (0.04% at h=512 already)."""
        profile = profile_from_module(model, 4)
        actual = model.n_params()
        assert profile.n_params == pytest.approx(actual, rel=0.01)

    def test_profile_usable_by_planner(self, model):
        """The introspected profile drives Algorithm 1 end to end."""
        from repro.core import IterationTimeModel, plan_activation_swapping
        from repro.core.hwprofile import profile_hardware
        from repro.hardware import evaluation_server

        profile = profile_from_module(model, 4)
        hw = profile_hardware(evaluation_server())
        plan = plan_activation_swapping(IterationTimeModel(profile, hw))
        assert plan.a_g2m >= profile.inter_block_bytes * (1 - 1e-9)

    def test_batch_scales_activations(self, model):
        small = profile_from_module(model, 2)
        large = profile_from_module(model, 8)
        assert large.activation_bytes_total == pytest.approx(
            4 * small.activation_bytes_total
        )


class TestDiTIntrospection:
    def test_architecture_recovered(self):
        model = DiTModel(dim=64, n_layers=3, n_heads=4, rng=np.random.default_rng(0))
        profile = profile_from_module(model, 2)
        config = profile.config
        assert config.n_layers == 3
        assert config.hidden_dim == 64
        assert config.seq_len == model.tokens_side**2

    def test_param_count_within_two_percent(self):
        model = DiTModel(dim=64, n_layers=3, n_heads=4, rng=np.random.default_rng(0))
        profile = profile_from_module(model, 2)
        assert profile.n_params == pytest.approx(model.n_params(), rel=0.02)


class TestErrors:
    def test_unknown_module_rejected(self):
        with pytest.raises(IntrospectionError):
            profile_from_module(object(), 1)

    def test_tied_vs_untied_param_accounting(self):
        tied = TransformerConfig("t", 2, 2, 64, vocab_size=100)
        untied = TransformerConfig("u", 2, 2, 64, vocab_size=100, tie_embeddings=False)
        assert untied.n_params - tied.n_params == 64 * 100 + 100
