"""Tests for the functional offload engine — the paper's correctness claims.

The centrepiece: active gradient offloading (updates during backward)
produces *bit-identical* parameters to a deferred optimizer stage, i.e.
no staleness (§IV-C); checkpoint recomputation is faithful; and the byte
counters match the analytic traffic formulas.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import (
    CPUAdam,
    CrossEntropyLoss,
    GPTModel,
    HOST,
    NVME,
    RatelOptimizer,
    RatelRuntime,
    StorageManager,
    ratel_hook,
    ratel_init,
)

GB = 1e9
VOCAB, DIM, LAYERS, HEADS, SEQ, BATCH = 37, 16, 3, 2, 8, 4


def make_batches(n_steps: int):
    rng = np.random.default_rng(99)
    batches = []
    for _step in range(n_steps):
        ids = rng.integers(0, VOCAB, size=(BATCH, SEQ))
        batches.append((ids, np.roll(ids, -1, axis=1)))
    return batches


def train(active_offload: bool, n_steps: int = 3, checkpoint_tier: str = NVME):
    loss_fn = CrossEntropyLoss()
    with ratel_init(
        gpu_capacity=1 * GB,
        host_capacity=1 * GB,
        nvme_capacity=4 * GB,
        checkpoint_tier=checkpoint_tier,
        active_offload=active_offload,
    ) as context:
        model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(5))
        runtime = ratel_hook(model)
        RatelOptimizer(model, runtime, lr=1e-2)
        losses = []
        for ids, targets in make_batches(n_steps):
            losses.append(runtime.train_step(lambda: loss_fn(model(ids), targets)))
        params = {name: p.data.copy() for name, p in model.named_parameters()}
        traffic = dict(context.manager.moved_bytes)
        order = list(runtime.update_order)
    return losses, params, traffic, order


class TestNoStaleness:
    """The paper's key §IV-C property, as an executable assertion."""

    def test_active_equals_deferred_bitwise(self):
        active_losses, active_params, _t, _o = train(active_offload=True)
        deferred_losses, deferred_params, _t2, _o2 = train(active_offload=False)
        assert active_losses == deferred_losses
        for name in active_params:
            np.testing.assert_array_equal(active_params[name], deferred_params[name])

    def test_loss_decreases(self):
        losses, _p, _t, _o = train(active_offload=True, n_steps=5)
        assert losses[-1] < losses[0]

    def test_gradients_consumed_last_block_first(self):
        """§IV-C: gradient tensors arrive with decreasing block index."""
        _losses, _params, _traffic, order = train(active_offload=True, n_steps=1)
        block_positions = {}
        for position, name in enumerate(order):
            if name.startswith("block"):
                index = int(name.split(".")[0].removeprefix("block"))
                block_positions.setdefault(index, position)
        indices_in_arrival_order = sorted(block_positions, key=block_positions.get)
        assert indices_in_arrival_order == sorted(block_positions, reverse=True)

    def test_every_parameter_updated_each_step(self):
        _losses, _params, _traffic, order = train(active_offload=True, n_steps=1)
        model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(5))
        expected = {name for name, _p in model.named_parameters()}
        assert set(order) == expected


class TestDelayedUpdateStaleness:
    """The counter-example: ZeRO-Offload's one-step delayed update.

    The paper rejects it because it introduces parameter staleness
    (§IV-C footnote); here the divergence is directly observable.
    """

    @staticmethod
    def _train_delayed(n_steps: int = 4):
        loss_fn = CrossEntropyLoss()
        with ratel_init(
            gpu_capacity=1 * GB,
            host_capacity=1 * GB,
            nvme_capacity=4 * GB,
            active_offload=False,
            delayed_update=True,
        ):
            model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(5))
            runtime = ratel_hook(model)
            RatelOptimizer(model, runtime, lr=1e-2)
            losses = []
            for ids, targets in make_batches(n_steps):
                losses.append(runtime.train_step(lambda: loss_fn(model(ids), targets)))
            params = {name: p.data.copy() for name, p in model.named_parameters()}
        return losses, params

    def test_first_step_identical_then_diverges(self):
        sync_losses, sync_params, _t, _o = train(active_offload=True, n_steps=4)
        delayed_losses, delayed_params = self._train_delayed(4)
        # Step 1 computes on identical (initial) parameters...
        assert delayed_losses[0] == sync_losses[0]
        # ...but from step 2 on, the delayed variant trains on stale
        # parameters and the trajectories separate.
        assert delayed_losses[1:] != sync_losses[1:]
        divergence = max(
            float(np.abs(sync_params[name] - delayed_params[name]).max())
            for name in sync_params
        )
        assert divergence > 1e-4

    def test_delayed_with_active_rejected(self):
        with pytest.raises(Exception):
            with ratel_init(
                gpu_capacity=GB,
                host_capacity=GB,
                nvme_capacity=GB,
                active_offload=True,
                delayed_update=True,
            ):
                pass


class TestRecomputeFidelity:
    def test_checkpointing_matches_uncheckpointed_training(self):
        """Same math modulo fp16 rounding of the spilled boundary tensors:
        with host-tier checkpoints (no fp16 spill) the match is exact."""
        active_losses, active_params, _t, _o = train(
            active_offload=True, checkpoint_tier=HOST
        )

        # Reference: no checkpointing at all, same mixed-precision Adam.
        loss_fn = CrossEntropyLoss()
        model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(5))
        manager = StorageManager(1 * GB, 1 * GB, 4 * GB)
        try:
            optimizer = CPUAdam(list(model.named_parameters()), manager, lr=1e-2, states_tier=HOST)
            reference_losses = []
            for ids, targets in make_batches(3):
                model.zero_grad()
                loss = loss_fn(model(ids), targets)
                loss.backward()
                for name, param in reversed(list(model.named_parameters())):
                    grad16 = param.grad.astype(np.float16).astype(np.float32)
                    param.data = optimizer.step_param(name, grad16).copy()
                    param.zero_grad()
                reference_losses.append(float(loss.data))
        finally:
            manager.close()

        np.testing.assert_allclose(active_losses, reference_losses, rtol=1e-6)
        for name, param in model.named_parameters():
            np.testing.assert_allclose(active_params[name], param.data, atol=1e-6)

    def test_nvme_checkpoints_quantize_to_fp16(self):
        """Spilling boundaries through NVMe rounds them to fp16 — a real
        mixed-precision effect, visible as a small loss difference."""
        host_losses, _p1, _t1, _o1 = train(active_offload=True, checkpoint_tier=HOST)
        nvme_losses, _p2, _t2, _o2 = train(active_offload=True, checkpoint_tier=NVME)
        assert host_losses[0] == pytest.approx(nvme_losses[0], rel=1e-3)


class TestTrafficAccounting:
    def test_gradient_traffic_matches_g16(self):
        """GPU->host carries every parameter's fp16 gradient per step,
        plus the per-block boundary checkpoints."""
        _losses, _params, traffic, _order = train(active_offload=True, n_steps=2)
        model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(5))
        n_params = model.n_params()
        boundary = 2 * BATCH * SEQ * DIM  # fp16 block input
        expected = 2 * (2 * n_params + LAYERS * boundary)  # 2 steps
        assert traffic[("gpu", "host")] == pytest.approx(expected)

    def test_optimizer_state_traffic_matches_26_bytes_per_param(self):
        """Per step: 14 B/param read (P32+OS32+P16) and 14 B/param written
        across host<->NVMe (the Eq. 5 optimizer traffic), plus the
        checkpoint spill round trips."""
        _losses, _params, traffic, _order = train(active_offload=True, n_steps=1)
        model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(5))
        n = model.n_params()
        boundary = 2 * BATCH * SEQ * DIM
        expected_down = 14 * n + LAYERS * boundary  # writes: states + spill
        expected_up = 14 * n + LAYERS * boundary  # reads: states + spill
        # Initialisation pushes P32+OS32+P16 (14 B/param) down once; G16
        # never rests on NVMe.
        assert traffic[("host", "nvme")] == pytest.approx(14 * n + expected_down)
        assert traffic[("nvme", "host")] == pytest.approx(expected_up)


class TestRuntimeConstruction:
    def test_direct_construction_without_api(self, rng):
        model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, rng)
        manager = StorageManager(1 * GB, 1 * GB, 4 * GB)
        try:
            optimizer = CPUAdam(list(model.named_parameters()), manager, states_tier=HOST)
            runtime = RatelRuntime(model, manager, optimizer, checkpoint_tier=HOST)
            loss_fn = CrossEntropyLoss()
            ids, targets = make_batches(1)[0]
            loss = runtime.train_step(lambda: loss_fn(model(ids), targets))
            assert loss > 0
        finally:
            manager.close()

    def test_invalid_checkpoint_tier_rejected(self, rng):
        model = GPTModel(VOCAB, DIM, 1, 2, SEQ, rng)
        manager = StorageManager(1 * GB, 1 * GB, 1 * GB)
        try:
            optimizer = CPUAdam(list(model.named_parameters()), manager, states_tier=HOST)
            with pytest.raises(ValueError):
                RatelRuntime(model, manager, optimizer, checkpoint_tier="gpu")
        finally:
            manager.close()

    def test_double_handler_install_rejected(self, rng):
        model = GPTModel(VOCAB, DIM, 1, 2, SEQ, rng)
        manager = StorageManager(1 * GB, 1 * GB, 1 * GB)
        try:
            optimizer = CPUAdam(list(model.named_parameters()), manager, states_tier=HOST)
            runtime = RatelRuntime(model, manager, optimizer, checkpoint_tier=HOST)
            with pytest.raises(RuntimeError):
                runtime._install_gradient_handlers()
        finally:
            manager.close()
