"""The causal trace context (:mod:`repro.obs.tracectx`).

Identity validation, W3C ``traceparent`` round trips (including every
lenient-parse rejection the spec calls for), child derivation, the
ambient ContextVar scopes, and bit-exact payload serialisation.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import tracectx
from repro.obs.tracectx import TraceContext, TraceError

hex_trace = st.text("0123456789abcdef", min_size=32, max_size=32).filter(
    lambda s: set(s) != {"0"}
)
hex_span = st.text("0123456789abcdef", min_size=16, max_size=16).filter(
    lambda s: set(s) != {"0"}
)


class TestTraceContext:
    def test_new_trace_is_a_valid_root(self):
        ctx = tracectx.new_trace()
        assert len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16
        assert ctx.parent_id == ""

    def test_child_keeps_trace_and_links_parent(self):
        root = tracectx.new_trace()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"trace_id": "xyz", "span_id": "a" * 16},
            {"trace_id": "A" * 32, "span_id": "a" * 16},  # uppercase
            {"trace_id": "0" * 32, "span_id": "a" * 16},  # all-zero
            {"trace_id": "a" * 32, "span_id": "0" * 16},
            {"trace_id": "a" * 32, "span_id": "a" * 8},  # short
            {"trace_id": "a" * 32, "span_id": "a" * 16, "parent_id": "nope"},
        ],
    )
    def test_invalid_ids_rejected(self, kwargs):
        with pytest.raises(TraceError):
            TraceContext(**kwargs)

    def test_frozen(self):
        ctx = tracectx.new_trace()
        with pytest.raises(AttributeError):
            ctx.trace_id = "b" * 32


class TestTraceparent:
    def test_round_trip(self):
        ctx = tracectx.new_trace()
        parsed = TraceContext.from_traceparent(ctx.to_traceparent())
        assert parsed is not None
        assert (parsed.trace_id, parsed.span_id) == (ctx.trace_id, ctx.span_id)

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-abc-def-01",  # wrong lengths
            "ff-" + "a" * 32 + "-" + "b" * 16 + "-01",  # forbidden version
            "00-" + "0" * 32 + "-" + "b" * 16 + "-01",  # all-zero trace
            "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # all-zero span
        ],
    )
    def test_lenient_parse_returns_none(self, header):
        assert TraceContext.from_traceparent(header) is None

    def test_parse_tolerates_case_and_whitespace(self):
        header = "  00-" + "A" * 32 + "-" + "B" * 16 + "-01  "
        parsed = TraceContext.from_traceparent(header)
        assert parsed is not None
        assert parsed.trace_id == "a" * 32


class TestAmbientScope:
    def test_no_trace_by_default(self):
        assert tracectx.current() is None
        assert tracectx.current_trace_id() == ""
        assert tracectx.current_payload() is None

    def test_activate_scopes_and_restores(self):
        ctx = tracectx.new_trace()
        with tracectx.activate(ctx) as active:
            assert active is ctx
            assert tracectx.current() is ctx
            assert tracectx.current_trace_id() == ctx.trace_id
        assert tracectx.current() is None

    def test_activate_restores_on_error(self):
        ctx = tracectx.new_trace()
        with pytest.raises(RuntimeError):
            with tracectx.activate(ctx):
                raise RuntimeError("boom")
        assert tracectx.current() is None

    def test_child_scope_derives_under_ambient(self):
        root = tracectx.new_trace()
        with tracectx.activate(root):
            with tracectx.child_scope() as child:
                assert child is not None
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
                assert tracectx.current() is child
            assert tracectx.current() is root

    def test_child_scope_is_noop_outside_a_trace(self):
        with tracectx.child_scope() as child:
            assert child is None
            assert tracectx.current() is None


class TestPayload:
    @given(trace_id=hex_trace, span_id=hex_span, parent_id=st.one_of(st.just(""), hex_span))
    @settings(max_examples=50, deadline=None)
    def test_payload_round_trip_is_bit_exact(self, trace_id, span_id, parent_id):
        ctx = TraceContext(trace_id=trace_id, span_id=span_id, parent_id=parent_id)
        assert TraceContext.from_payload(ctx.to_payload()) == ctx

    @pytest.mark.parametrize("payload", [None, [], {}, {"span_id": "a" * 16}, "str"])
    def test_non_payloads_rejected(self, payload):
        with pytest.raises(TraceError):
            TraceContext.from_payload(payload)
