"""Tests for graceful degradation under SSD failures.

The replanning path (:mod:`repro.core.resilience`) must degrade smoothly
— re-profiling and re-running Algorithm 1 on the surviving array — while
fixed plans (a stale Ratel plan, ZeRO-Infinity) collapse or stop
fitting.  The ``ext_resilience`` experiment packages the comparison.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import ZeroInfinityPolicy
from repro.core import (
    RatelPolicy,
    degraded_server,
    fixed_plan_outcome,
    replan_on_failure,
)
from repro.experiments import ext_resilience
from repro.hardware import evaluation_server
from repro.models import llm, profile_model

FAILURES = (0, 1, 2, 3, 4)


@pytest.fixture(scope="module")
def episode():
    """Every recovery posture across 0-4 failures on the 6-drive array."""
    server = evaluation_server().with_ssds(6)
    profile = profile_model(llm("135B"), 40)
    ratel = RatelPolicy()
    zero = ZeroInfinityPolicy()
    return {
        "server": server,
        "replan": [replan_on_failure(ratel, profile, server, n) for n in FAILURES],
        "stale": [fixed_plan_outcome(ratel, profile, server, n) for n in FAILURES],
        "zero": [fixed_plan_outcome(zero, profile, server, n) for n in FAILURES],
    }


class TestDegradedServer:
    def test_removes_drives(self, server):
        assert degraded_server(server, 3).n_ssds == server.n_ssds - 3

    def test_zero_failures_is_identity(self, server):
        assert degraded_server(server, 0).n_ssds == server.n_ssds

    def test_over_failure_clamps_to_zero(self, server):
        assert degraded_server(server, server.n_ssds + 5).n_ssds == 0

    def test_negative_failures_rejected(self, server):
        with pytest.raises(ValueError):
            degraded_server(server, -1)


class TestReplanning:
    def test_replan_stays_feasible(self, episode):
        for report in episode["replan"]:
            assert report.outcome.feasible, report.outcome.reason

    def test_replan_degrades_monotonically(self, episode):
        tps = [report.outcome.tokens_per_s for report in episode["replan"]]
        assert all(a >= b for a, b in zip(tps, tps[1:]))
        assert tps[-1] < tps[0]  # failures genuinely cost throughput

    def test_replan_reprofiles_surviving_array(self, episode):
        for report in episode["replan"]:
            assert report.measured is not None
            assert report.server.n_ssds == 6 - report.n_failed

    def test_replan_beats_stale_plan(self, episode):
        """Algorithm 1 re-run on the degraded array never loses to the
        schedule compiled for bandwidth that no longer exists."""
        pairs = list(zip(episode["replan"], episode["stale"]))
        for report, stale in pairs:
            assert report.outcome.tokens_per_s >= stale.tokens_per_s
        assert any(
            report.outcome.tokens_per_s > stale.tokens_per_s for report, stale in pairs
        )

    def test_replan_zero_failures_matches_healthy_eval(self, episode):
        profile = profile_model(llm("135B"), 40)
        healthy = RatelPolicy().evaluate(profile, episode["server"])
        assert episode["replan"][0].outcome.tokens_per_s == healthy.tokens_per_s


class TestFixedPlanCollapse:
    def test_zero_infinity_tracks_lost_bandwidth(self, episode):
        tps = [outcome.tokens_per_s for outcome in episode["zero"]]
        assert all(not math.isnan(t) for t in tps)
        # Four of six drives gone: the fixed plan loses a large fraction
        # of its throughput ...
        assert tps[-1] < 0.65 * tps[0]

    def test_replan_pulls_ahead_of_zero_under_failures(self, episode):
        replan_final = episode["replan"][-1].outcome.tokens_per_s
        zero_final = episode["zero"][-1].tokens_per_s
        # ... while the replanner keeps a comfortable multiple of it.
        assert replan_final > 2 * zero_final

    def test_total_array_loss_is_infeasible(self):
        server = evaluation_server().with_ssds(6)
        profile = profile_model(llm("135B"), 40)
        outcome = fixed_plan_outcome(ZeroInfinityPolicy(), profile, server, 6)
        assert not outcome.feasible
        assert outcome.reason


class TestExtResilienceExperiment:
    @pytest.fixture(scope="class")
    def results(self):
        return ext_resilience.run()

    def test_returns_table_and_timeline(self, results):
        table, timeline = results
        assert table.columns == [
            "failed",
            "drives left",
            "Ratel replan",
            "Ratel stale plan",
            "ZeRO-Infinity",
            "status",
        ]
        assert [row[0] for row in table.rows] == list(FAILURES)
        assert timeline.columns[0] == "failed at t=5s"
        assert len(timeline.rows) == 4

    def test_mid_iteration_dropouts_inflate_iteration_time(self, results):
        _, timeline = results
        times = [row[1] for row in timeline.rows]
        assert all(later > times[0] for later in times[1:])

    def test_renders(self, results):
        for result in results:
            assert "ext_resilience" in result.render()


class TestResilienceProperties:
    """Algebraic invariants of the degradation/replan pipeline.

    These hold for *any* failure pattern, so they are stated as
    hypothesis properties rather than example tables.
    """

    @given(a=st.integers(min_value=0, max_value=8), b=st.integers(min_value=0, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_degradation_composes(self, a, b):
        # Losing a drives then b more is the same machine as losing
        # a + b at once — degradation is a monoid action on the server.
        server = evaluation_server().with_ssds(6)
        assert degraded_server(degraded_server(server, a), b) == degraded_server(
            server, a + b
        )

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_degradation_is_monotone(self, losses):
        # Drive counts only ever shrink along a failure sequence, and
        # never go negative no matter how over-subscribed the losses are.
        server = evaluation_server().with_ssds(6)
        counts = [server.n_ssds]
        for n in losses:
            server = degraded_server(server, n)
            counts.append(server.n_ssds)
        assert counts == sorted(counts, reverse=True)
        assert counts[-1] >= 0

    def test_replan_with_zero_failures_is_a_no_op(self):
        # n_failed=0 must reproduce the healthy evaluation exactly: same
        # plan, same feasibility, bit-identical simulated metrics.
        server = evaluation_server().with_ssds(6)
        profile = profile_model(llm("135B"), 40)
        policy = RatelPolicy()
        report = replan_on_failure(policy, profile, server, 0)
        healthy = policy.evaluate(profile, server)
        assert report.server == server
        assert report.outcome.feasible == healthy.feasible
        assert report.outcome.plan == healthy.plan
        assert report.outcome.metrics == healthy.metrics
