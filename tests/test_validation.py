"""Tests for the analytic-vs-engine validation sweep."""

from __future__ import annotations

from repro.core import sweep_agreement
from repro.hardware import EVALUATION_SERVER


class TestAgreement:
    def test_all_points_within_15_percent(self):
        points = sweep_agreement(EVALUATION_SERVER, models=("6B", "13B", "70B"))
        assert points, "sweep produced no feasible points"
        for point in points:
            assert abs(point.relative_error) < 0.15, point

    def test_analytic_is_a_lower_bound(self):
        """Eqs. 1-5 assume perfect overlap: the engine can only be slower."""
        for point in sweep_agreement(EVALUATION_SERVER, models=("13B",)):
            assert point.simulated_s >= point.analytic_s * (1 - 1e-9)

    def test_agreement_improves_with_model_size(self):
        """Fill/drain effects amortize over more blocks."""
        points = sweep_agreement(
            EVALUATION_SERVER, models=("6B", "70B"), batches=(16,)
        )
        by_model = {p.model: abs(p.relative_error) for p in points}
        assert by_model["70B"] < by_model["6B"]


class TestStarQuality:
    """The paper's Fig. 9b 'nearly optimal predictions', against execution."""

    def test_regret_under_two_percent(self):
        from repro.core import star_quality
        from repro.hardware import GiB, evaluation_server

        server = evaluation_server(main_memory_bytes=128 * GiB)
        for point in star_quality(server, batches=(24, 48)):
            assert point.regret < 0.02, point

    def test_prediction_is_feasible_amount(self):
        from repro.core import star_quality
        from repro.hardware import evaluation_server
        from repro.models import llm, profile_model

        server = evaluation_server()
        for point in star_quality(server, batches=(36,)):
            profile = profile_model(llm("13B"), point.batch_size)
            assert profile.inter_block_bytes <= point.predicted_a_g2m
            assert point.predicted_a_g2m <= profile.activation_bytes_total
