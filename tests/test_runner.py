"""Tests for the sweep orchestration subsystem (:mod:`repro.runner`)."""

from __future__ import annotations

import math

import pytest

from repro.baselines import ZeroInfinityPolicy
from repro.core import RatelPolicy
from repro.core.evaluation import EvalOutcome
from repro.faults import (
    CrashPolicy,
    FaultInjected,
    FlakyPolicy,
    FlakyThenSlowPolicy,
    PoisonPolicy,
    SlowPolicy,
)
from repro.hardware import evaluation_server
from repro.models import llm, profile_model
from repro.runner import (
    CacheKeyError,
    PointFailure,
    ProgressEvent,
    ResultCache,
    Sweep,
    SweepError,
    SweepPoint,
    cache_key,
    compute_point,
    is_failure,
)

SERVER = evaluation_server()
CONFIG = llm("13B")


def grid(batches=(8, 16), policies=(ZeroInfinityPolicy(), RatelPolicy())):
    return [
        SweepPoint.evaluate(policy, CONFIG, batch, SERVER)
        for batch in batches
        for policy in policies
    ]


class TestCacheKeys:
    def test_deterministic_across_instances(self):
        """Fresh-but-equal policies/configs/servers produce the same key."""
        a = SweepPoint.evaluate(RatelPolicy(), llm("13B"), 32, evaluation_server())
        b = SweepPoint.evaluate(RatelPolicy(), llm("13B"), 32, evaluation_server())
        assert a.key() == b.key()

    def test_distinguishes_batch(self):
        a = SweepPoint.evaluate(RatelPolicy(), CONFIG, 32, SERVER)
        b = SweepPoint.evaluate(RatelPolicy(), CONFIG, 16, SERVER)
        assert a.key() != b.key()

    def test_distinguishes_policy_variant(self):
        a = SweepPoint.evaluate(RatelPolicy("optimized"), CONFIG, 32, SERVER)
        b = SweepPoint.evaluate(RatelPolicy("naive"), CONFIG, 32, SERVER)
        assert a.key() != b.key()

    def test_distinguishes_server(self):
        a = SweepPoint.evaluate(RatelPolicy(), CONFIG, 32, evaluation_server(n_ssds=12))
        b = SweepPoint.evaluate(RatelPolicy(), CONFIG, 32, evaluation_server(n_ssds=6))
        assert a.key() != b.key()

    def test_distinguishes_kind(self):
        a = SweepPoint.evaluate(RatelPolicy(), CONFIG, 1, SERVER)
        b = SweepPoint.max_trainable(RatelPolicy(), SERVER)
        assert a.key() != b.key()

    def test_private_policy_state_excluded(self):
        """Planner memo tables must not leak into the content key."""
        policy = RatelPolicy()
        before = SweepPoint.evaluate(policy, CONFIG, 32, SERVER).key()
        policy.plan(profile_model(CONFIG, 32), SERVER)  # populates _plan_cache
        after = SweepPoint.evaluate(policy, CONFIG, 32, SERVER).key()
        assert before == after

    def test_unserialisable_component_raises(self):
        with pytest.raises(CacheKeyError):
            cache_key("test", payload=object())


class TestSweepCaching:
    def test_hit_returns_identical_metrics(self):
        sweep = Sweep()
        first = sweep.evaluate(RatelPolicy(), CONFIG, 32, SERVER)
        second = sweep.evaluate(RatelPolicy(), CONFIG, 32, SERVER)
        assert not first.cached
        assert second.cached
        assert second.tokens_per_s == first.tokens_per_s
        assert second.metrics == first.metrics
        assert sweep.stats.hits == 1
        assert sweep.stats.misses == 1

    def test_duplicate_points_computed_once(self):
        sweep = Sweep()
        point = SweepPoint.evaluate(RatelPolicy(), CONFIG, 32, SERVER)
        results = sweep.run([point, point, point])
        assert sweep.stats.misses == 1
        assert results[0].tokens_per_s == results[1].tokens_per_s == results[2].tokens_per_s

    def test_disk_cache_roundtrip(self, tmp_path):
        first = Sweep(cache_dir=str(tmp_path))
        outcome = first.evaluate(RatelPolicy(), CONFIG, 32, SERVER)

        second = Sweep(cache_dir=str(tmp_path))
        restored = second.evaluate(RatelPolicy(), CONFIG, 32, SERVER)
        assert restored.cached
        assert second.stats.disk_hits == 1
        assert restored.tokens_per_s == outcome.tokens_per_s
        assert restored.metrics == outcome.metrics
        assert restored.result is None  # traces stay out of the JSON layer

    def test_detail_restores_live_result(self, tmp_path):
        Sweep(cache_dir=str(tmp_path)).evaluate(RatelPolicy(), CONFIG, 32, SERVER)
        fresh = Sweep(cache_dir=str(tmp_path))
        outcome = fresh.evaluate(RatelPolicy(), CONFIG, 32, SERVER, detail=True)
        assert outcome.require_result().trace is not None

    def test_scalar_points_cached(self):
        sweep = Sweep()
        a = sweep.max_trainable(RatelPolicy(), SERVER)
        b = sweep.max_trainable(RatelPolicy(), SERVER)
        assert a == b
        assert sweep.stats.hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        sweep = Sweep(cache_dir=str(tmp_path))
        point = SweepPoint.evaluate(RatelPolicy(), CONFIG, 8, SERVER)
        sweep.run_point(point)
        for path in tmp_path.rglob("*.json"):
            path.write_text("{not json")
        fresh = Sweep(cache_dir=str(tmp_path))
        outcome = fresh.run_point(point)
        assert isinstance(outcome, EvalOutcome)
        assert fresh.stats.disk_hits == 0


class TestExecutorEquivalence:
    def _values(self, outcomes):
        return [
            o.tokens_per_s if o.feasible else None for o in outcomes
        ]

    def test_process_pool_matches_serial(self):
        serial = Sweep(executor="serial").run(grid())
        parallel = Sweep(executor="process", max_workers=2).run(grid())
        assert self._values(serial) == self._values(parallel)

    def test_thread_pool_matches_serial(self):
        serial = Sweep(executor="serial").run(grid())
        threaded = Sweep(executor="thread", max_workers=2).run(grid())
        assert self._values(serial) == self._values(threaded)

    def test_results_ordered_like_input(self):
        points = grid(batches=(8, 16, 32))
        outcomes = Sweep(executor="process", max_workers=3).run(points)
        for point, outcome in zip(points, outcomes):
            assert outcome.policy == point.policy.name
            assert outcome.batch_size == point.batch_size

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            Sweep(executor="fork-bomb")


class TestProgressHook:
    def test_fires_once_per_point(self):
        events: list[ProgressEvent] = []
        sweep = Sweep(progress=events.append)
        points = grid()
        sweep.run(points)
        assert len(events) == len(points)
        assert {e.index for e in events} == set(range(len(points)))
        assert all(e.total == len(points) for e in events)
        assert not any(e.cached for e in events)

    def test_cached_flag_on_rerun(self):
        events: list[ProgressEvent] = []
        sweep = Sweep(progress=events.append)
        sweep.run(grid())
        events.clear()
        sweep.run(grid())
        assert events and all(e.cached for e in events)


class TestEvalOutcome:
    def test_payload_roundtrip(self):
        outcome = compute_point(SweepPoint.evaluate(RatelPolicy(), CONFIG, 32, SERVER))
        restored = EvalOutcome.from_payload(outcome.to_payload())
        assert restored.tokens_per_s == outcome.tokens_per_s
        assert restored.metrics == outcome.metrics
        assert restored.plan.a_g2m == outcome.plan.a_g2m
        assert restored.feasible == outcome.feasible

    def test_infeasible_metrics_are_nan(self):
        outcome = compute_point(
            SweepPoint.evaluate(RatelPolicy(), llm("412B"), 64, evaluation_server(n_ssds=1))
        )
        assert not outcome.feasible
        assert math.isnan(outcome.tokens_per_s)
        assert "cannot fit" in outcome.reason
        with pytest.raises(ValueError, match="not simulated"):
            outcome.require_result()

    def test_policy_evaluate_matches_simulate(self):
        """The rich outcome carries exactly the legacy simulate() numbers."""
        policy = RatelPolicy()
        profile = profile_model(CONFIG, 32)
        outcome = policy.evaluate(profile, SERVER)
        legacy = policy.simulate(profile, SERVER)
        assert outcome.tokens_per_s == legacy.tokens_per_s
        assert outcome.iteration_time == legacy.iteration_time


class TestResultCacheUnit:
    def test_lru_eviction(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.put("c", 3)  # evicts "b", the least recently used
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None

    def test_stats_hit_rate(self):
        cache = ResultCache()
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        assert cache.stats.hit_rate == pytest.approx(0.5)


class TestProgressHookResilience:
    def test_raising_hook_does_not_abort_the_sweep(self, caplog):
        """S1: a broken observer must not kill the run it observes."""

        def explode(event):
            raise RuntimeError("observer bug")

        sweep = Sweep(progress=explode)
        points = grid()
        with caplog.at_level("ERROR", logger="repro.runner"):
            outcomes = sweep.run(points)
        assert len(outcomes) == len(points)
        assert all(isinstance(o, EvalOutcome) for o in outcomes)
        assert any("progress hook raised" in r.message for r in caplog.records)

    def test_raising_hook_logged_once_per_point(self, caplog):
        calls = []

        def explode(event):
            calls.append(event)
            raise RuntimeError("observer bug")

        points = grid()
        with caplog.at_level("ERROR", logger="repro.runner"):
            Sweep(progress=explode).run(points)
        assert len(calls) == len(points)


class TestSweepValidation:
    def test_unknown_on_error_rejected(self):
        with pytest.raises(SweepError):
            Sweep(on_error="shrug")

    def test_negative_retries_rejected(self):
        with pytest.raises(SweepError):
            Sweep(retries=-1)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(SweepError):
            Sweep(timeout=0.0)


class TestQuarantineSerial:
    def test_poisoned_point_quarantined_others_complete(self):
        sweep = Sweep(retries=1, retry_backoff_s=0.001, on_error="quarantine")
        points = [
            SweepPoint.evaluate(RatelPolicy(), CONFIG, 8, SERVER),
            SweepPoint.evaluate(PoisonPolicy(), CONFIG, 8, SERVER),
            SweepPoint.evaluate(RatelPolicy(), CONFIG, 16, SERVER),
        ]
        outcomes = sweep.run(points)
        assert isinstance(outcomes[0], EvalOutcome) and outcomes[0].feasible
        assert isinstance(outcomes[2], EvalOutcome) and outcomes[2].feasible
        failure = outcomes[1]
        assert is_failure(failure)
        assert failure.error_type == "FaultInjected"
        assert failure.attempts == 2  # first try + one retry
        assert not failure.feasible  # renders as a non-result in tables
        assert "quarantined" in str(failure)

    def test_default_mode_still_raises(self):
        sweep = Sweep()
        with pytest.raises(FaultInjected):
            sweep.run([SweepPoint.evaluate(PoisonPolicy(), CONFIG, 8, SERVER)])

    def test_retry_rescues_flaky_point(self, tmp_path):
        sweep = Sweep(retries=2, retry_backoff_s=0.001, on_error="quarantine")
        policy = FlakyPolicy(str(tmp_path), fail_times=2)
        [outcome] = sweep.run([SweepPoint.evaluate(policy, CONFIG, 8, SERVER)])
        assert isinstance(outcome, EvalOutcome)

    def test_failures_never_cached(self, tmp_path):
        """A quarantined point is recomputed on the next run — and can heal."""
        sweep = Sweep(retries=0, on_error="quarantine", cache_dir=str(tmp_path / "cache"))
        policy = FlakyPolicy(str(tmp_path), fail_times=1)
        point = SweepPoint.evaluate(policy, CONFIG, 8, SERVER)
        [first] = sweep.run([point])
        assert is_failure(first)
        [second] = sweep.run([point])  # sentinel consumed: now healthy
        assert isinstance(second, EvalOutcome)

    def test_point_failure_is_frozen_metadata(self):
        failure = PointFailure(
            kind="evaluate", label="x", error_type="OSError", message="boom", attempts=3
        )
        assert not failure.feasible
        assert "3 attempt(s)" in str(failure)
        assert "OSError" in str(failure)


class TestQuarantinePool:
    def test_worker_crash_and_poison_quarantine_only_the_poison(self, tmp_path):
        """The acceptance scenario: one worker hard-crashes (retried after
        the pool is rebuilt), one point always raises (quarantined); the
        healthy points all complete."""
        points = [
            SweepPoint.evaluate(RatelPolicy(), CONFIG, 8, SERVER),
            SweepPoint.evaluate(CrashPolicy(str(tmp_path)), CONFIG, 8, SERVER),
            SweepPoint.evaluate(PoisonPolicy(), CONFIG, 8, SERVER),
            SweepPoint.evaluate(RatelPolicy(), CONFIG, 16, SERVER),
        ]
        sweep = Sweep(
            executor="process",
            max_workers=2,
            retries=2,
            retry_backoff_s=0.01,
            on_error="quarantine",
        )
        outcomes = sweep.run(points)
        assert isinstance(outcomes[0], EvalOutcome) and outcomes[0].feasible
        assert isinstance(outcomes[1], EvalOutcome)  # crash retried to success
        assert is_failure(outcomes[2])  # only the poisoned point fails
        assert outcomes[2].error_type == "FaultInjected"
        assert isinstance(outcomes[3], EvalOutcome) and outcomes[3].feasible

    def test_worker_crash_raises_without_retries(self, tmp_path):
        # A second point keeps the sweep on the pool path (a single
        # unique point with no timeout drains serially in-process).
        sweep = Sweep(executor="process", max_workers=2, on_error="raise")
        points = [
            SweepPoint.evaluate(CrashPolicy(str(tmp_path)), CONFIG, 8, SERVER),
            SweepPoint.evaluate(RatelPolicy(), CONFIG, 8, SERVER),
        ]
        with pytest.raises(Exception):  # noqa: B017 - BrokenProcessPool
            sweep.run(points)

    def test_flaky_point_retried_across_workers(self, tmp_path):
        sweep = Sweep(
            executor="process",
            max_workers=2,
            retries=2,
            retry_backoff_s=0.01,
            on_error="quarantine",
        )
        policy = FlakyPolicy(str(tmp_path), fail_times=2)
        outcomes = sweep.run(
            [
                SweepPoint.evaluate(policy, CONFIG, 8, SERVER),
                SweepPoint.evaluate(RatelPolicy(), CONFIG, 8, SERVER),
            ]
        )
        assert all(isinstance(o, EvalOutcome) for o in outcomes)

    def test_timeout_quarantines_slow_point_only(self):
        sweep = Sweep(
            executor="process", max_workers=2, timeout=0.5, on_error="quarantine"
        )
        outcomes = sweep.run(
            [
                SweepPoint.evaluate(SlowPolicy(2.0), CONFIG, 8, SERVER),
                SweepPoint.evaluate(RatelPolicy(), CONFIG, 8, SERVER),
            ]
        )
        assert is_failure(outcomes[0])
        assert outcomes[0].timed_out
        assert "timeout" in outcomes[0].message
        assert isinstance(outcomes[1], EvalOutcome) and outcomes[1].feasible

    def test_timeout_raises_in_fail_fast_mode(self):
        sweep = Sweep(executor="process", max_workers=1, timeout=0.5, on_error="raise")
        with pytest.raises(TimeoutError):
            sweep.run([SweepPoint.evaluate(SlowPolicy(2.0), CONFIG, 8, SERVER)])


class TestShimsRemoved:
    """The pre-``evaluate()`` shims are gone after their deprecation cycle."""

    def test_legacy_helpers_are_gone(self):
        import repro.experiments.common as common

        assert not hasattr(common, "throughput_tokens_per_s")
        assert not hasattr(common, "best_throughput")


class TestSummaryLine:
    """Every ``run()`` ends with one INFO line a human can grep for."""

    def test_clean_run_logs_counts(self, caplog):
        sweep = Sweep()
        with caplog.at_level("INFO", logger="repro.runner"):
            sweep.run(grid(batches=(8,)))
        [line] = [
            r.getMessage() for r in caplog.records if r.getMessage().startswith("sweep:")
        ]
        assert "2 points, 2 computed, 0 cache hits, 0 quarantined" in line
        assert "last failure" not in line

    def test_quarantined_run_names_the_last_failure(self, caplog):
        sweep = Sweep(retries=0, on_error="quarantine")
        points = [
            SweepPoint.evaluate(RatelPolicy(), CONFIG, 8, SERVER),
            SweepPoint.evaluate(PoisonPolicy(), CONFIG, 8, SERVER),
        ]
        with caplog.at_level("INFO", logger="repro.runner"):
            sweep.run(points)
        [line] = [
            r.getMessage() for r in caplog.records if r.getMessage().startswith("sweep:")
        ]
        assert "1 quarantined" in line
        assert "last failure" in line
        assert "FaultInjected" in line

    def test_cache_hits_counted(self, caplog, tmp_path):
        sweep = Sweep(cache_dir=str(tmp_path))
        points = grid(batches=(8,))
        sweep.run(points)
        with caplog.at_level("INFO", logger="repro.runner"):
            sweep.run(points)
        [line] = [
            r.getMessage() for r in caplog.records if r.getMessage().startswith("sweep:")
        ]
        assert "0 computed, 2 cache hits" in line


class TestRetryThenTimeout:
    def test_transient_failure_then_slow_retry_quarantines(self, tmp_path):
        """A point whose retry hangs burns both its attempts: the first
        raises (earning the retry), the retry hits the per-point timeout."""
        sweep = Sweep(
            executor="process",
            max_workers=2,
            retries=1,
            retry_backoff_s=0.01,
            timeout=0.5,
            on_error="quarantine",
        )
        policy = FlakyThenSlowPolicy(str(tmp_path), delay_s=2.0)
        [failure] = sweep.run([SweepPoint.evaluate(policy, CONFIG, 8, SERVER)])
        assert is_failure(failure)
        assert failure.attempts == 2
        assert failure.timed_out
        assert "timeout" in failure.message
