"""Tests for the optimizers: reference Adam and out-of-core CPU Adam."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import (
    CPUAdam,
    Adam,
    HOST,
    NVME,
    OptimizerError,
    StorageManager,
    Tensor,
)

MB = 10**6


def reference_adam_step(w, g, m, v, step, lr=1e-3, b1=0.9, b2=0.999, eps=1e-8):
    """Textbook Adam, NumPy, for cross-checking."""
    m = b1 * m + (1 - b1) * g
    v = b2 * v + (1 - b2) * g**2
    m_hat = m / (1 - b1**step)
    v_hat = v / (1 - b2**step)
    return w - lr * m_hat / (np.sqrt(v_hat) + eps), m, v


class TestAdam:
    def test_matches_reference_over_steps(self, rng):
        w0 = rng.normal(size=(8,)).astype(np.float32)
        param = Tensor(w0.copy(), requires_grad=True)
        opt = Adam([("w", param)], lr=1e-2)
        w, m, v = w0.astype(np.float64), np.zeros(8), np.zeros(8)
        for step in range(1, 6):
            grad = rng.normal(size=(8,)).astype(np.float32)
            param.grad = grad.copy()
            opt.step()
            w, m, v = reference_adam_step(w, grad, m, v, step, lr=1e-2)
            np.testing.assert_allclose(param.data, w, rtol=1e-4, atol=1e-6)

    def test_missing_grad_raises(self, rng):
        param = Tensor(rng.normal(size=(4,)).astype(np.float32), requires_grad=True)
        opt = Adam([("w", param)])
        with pytest.raises(OptimizerError):
            opt.step()

    def test_zero_grad(self, rng):
        param = Tensor(rng.normal(size=(4,)).astype(np.float32), requires_grad=True)
        param.grad = np.ones(4, dtype=np.float32)
        Adam([("w", param)]).zero_grad()
        assert param.grad is None


class TestCPUAdam:
    @pytest.fixture
    def setup(self, rng, tmp_path):
        manager = StorageManager(10 * MB, 10 * MB, 100 * MB, spill_dir=str(tmp_path))
        param = Tensor(rng.normal(size=(64,)).astype(np.float32), requires_grad=True)
        original = param.data.copy()
        optimizer = CPUAdam([("w", param)], manager, lr=1e-2, states_tier=NVME)
        yield manager, param, optimizer, original
        manager.close()

    def test_init_installs_fp16_copy(self, setup):
        _mgr, param, _opt, original = setup
        np.testing.assert_array_equal(
            param.data, original.astype(np.float16).astype(np.float32)
        )

    def test_master_weights_stay_fp32(self, setup):
        _mgr, _param, optimizer, original = setup
        np.testing.assert_array_equal(optimizer.master_weights("w"), original)

    def test_step_matches_reference_with_fp16_grads(self, setup, rng):
        manager, param, optimizer, original = setup
        w = original.astype(np.float64)
        m = np.zeros(64)
        v = np.zeros(64)
        for step in range(1, 4):
            grad16 = rng.normal(size=(64,)).astype(np.float16).astype(np.float32)
            fresh = optimizer.step_param("w", grad16)
            w, m, v = reference_adam_step(w, grad16.astype(np.float64), m, v, step, lr=1e-2)
            np.testing.assert_allclose(optimizer.master_weights("w"), w, rtol=1e-4, atol=1e-6)
            np.testing.assert_array_equal(
                fresh, w.astype(np.float32).astype(np.float16).astype(np.float32)
            )

    def test_state_traffic_is_12_plus_14_bytes_per_param(self, setup, rng):
        """Each step reads P32+OS32 (12 B/param) and writes them + P16
        (14 B/param) across the host<->NVMe link."""
        manager, _param, optimizer, _original = setup
        before_read = manager.traffic(NVME, HOST)
        before_write = manager.traffic(HOST, NVME)
        optimizer.step_param("w", np.zeros(64, dtype=np.float32))
        read = manager.traffic(NVME, HOST) - before_read
        written = manager.traffic(HOST, NVME) - before_write
        n = 64
        assert read == pytest.approx(12 * n + 2 * n)  # states + old P16 slot
        assert written == pytest.approx(14 * n)

    def test_states_rest_on_their_tier(self, setup):
        manager, _param, optimizer, _original = setup
        optimizer.step_param("w", np.zeros(64, dtype=np.float32))
        for suffix in ("p32", "m32", "v32", "p16"):
            assert manager.get(f"w.{suffix}").tier == NVME

    def test_unknown_param_rejected(self, setup):
        _mgr, _param, optimizer, _orig = setup
        with pytest.raises(OptimizerError):
            optimizer.step_param("nope", np.zeros(1))

    def test_host_tier_mode_has_no_nvme_traffic(self, rng, tmp_path):
        manager = StorageManager(10 * MB, 10 * MB, 100 * MB, spill_dir=str(tmp_path))
        try:
            param = Tensor(rng.normal(size=(16,)).astype(np.float32), requires_grad=True)
            optimizer = CPUAdam([("w", param)], manager, states_tier=HOST)
            optimizer.step_param("w", np.zeros(16, dtype=np.float32))
            assert manager.traffic(HOST, NVME) == 0
            assert manager.traffic(NVME, HOST) == 0
        finally:
            manager.close()

    def test_invalid_states_tier_rejected(self, rng, tmp_path):
        manager = StorageManager(MB, MB, MB, spill_dir=str(tmp_path))
        try:
            param = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
            with pytest.raises(OptimizerError):
                CPUAdam([("w", param)], manager, states_tier="gpu")
        finally:
            manager.close()

    def test_per_param_step_counts_independent(self, rng, tmp_path):
        """Active offloading updates parameters at different times; the
        bias correction must track each parameter's own step count."""
        manager = StorageManager(10 * MB, 10 * MB, 100 * MB, spill_dir=str(tmp_path))
        try:
            pa = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
            pb = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
            optimizer = CPUAdam([("a", pa), ("b", pb)], manager, states_tier=HOST)
            optimizer.step_param("a", np.ones(4, dtype=np.float32))
            optimizer.step_param("a", np.ones(4, dtype=np.float32))
            optimizer.step_param("b", np.ones(4, dtype=np.float32))
            assert optimizer.step_counts == {"a": 2, "b": 1}
        finally:
            manager.close()
