"""Tests for Ratel and the baseline policies: the paper's headline claims."""

from __future__ import annotations

import pytest

from repro.baselines import (
    CapuchinPolicy,
    CheckmatePolicy,
    ColossalAIPolicy,
    FastDiTPolicy,
    FlashNeuronPolicy,
    G10ActivationPolicy,
    G10Policy,
    MegatronPolicy,
    ZeroInfinityPolicy,
    ZeroOffloadPolicy,
)
from repro.core import RatelPolicy
from repro.core.memory_model import InfeasibleError
from repro.hardware import DGX_A100, GiB, RTX_4080, evaluation_server
from repro.models import dit, llm, profile_model

ALL_OFFLOADERS = [
    RatelPolicy(),
    ZeroInfinityPolicy(),
    ZeroOffloadPolicy(),
    ColossalAIPolicy(),
    FlashNeuronPolicy(),
]


class TestHeadlineClaims:
    """The abstract's three numbered results, as assertions."""

    def test_ratel_trains_175b_on_4090_with_256gb(self):
        """Claim 1: first to fine-tune 175B on an RTX 4090 + 256 GB DRAM."""
        server = evaluation_server(main_memory_bytes=256 * GiB)
        profile = profile_model(llm("175B"), 1)
        assert RatelPolicy().feasible(profile, server)

    def test_baselines_cannot_train_175b_on_256gb(self):
        server = evaluation_server(main_memory_bytes=256 * GiB)
        profile = profile_model(llm("175B"), 1)
        for policy in (ZeroInfinityPolicy(), ZeroOffloadPolicy(), ColossalAIPolicy(),
                       FlashNeuronPolicy()):
            assert not policy.feasible(profile, server), policy.name

    def test_ratel_throughput_advantage_on_13b(self, server):
        """Claim 2: >= 2x over the best baseline on the 13B model."""
        profile = profile_model(llm("13B"), 32)
        ratel = RatelPolicy().simulate(profile, server).tokens_per_s
        for policy, min_ratio in (
            (ZeroOffloadPolicy(), 2.0),
            (ZeroInfinityPolicy(), 2.5),
            (ColossalAIPolicy(), 4.0),
        ):
            baseline = policy.simulate(profile, server).tokens_per_s
            assert ratel / baseline >= min_ratio, policy.name

    def test_ratel_trains_175b_even_on_4080(self):
        server = evaluation_server(gpu=RTX_4080, main_memory_bytes=256 * GiB)
        assert RatelPolicy().feasible(profile_model(llm("175B"), 1), server)

    def test_ratel_trains_276b_at_768gb(self, server):
        assert RatelPolicy().feasible(profile_model(llm("276B"), 1), server)


class TestFlashNeuron:
    def test_fails_even_on_6b(self, server):
        """§III-A: FlashNeuron 'even fails to fine-tune a 6B model'."""
        assert not FlashNeuronPolicy().feasible(profile_model(llm("6B"), 1), server)

    def test_gpu_memory_is_the_binding_tier(self, server):
        report = FlashNeuronPolicy().memory_needs(profile_model(llm("6B"), 1), server)
        assert "gpu" in report.shortfalls(server)
        assert "main" not in report.shortfalls(server)

    def test_no_model_state_traffic(self, server):
        """FlashNeuron keeps states on-GPU: only activations move."""
        profile = profile_model(llm("6B"), 1)
        schedule = FlashNeuronPolicy().compile(profile, server)
        assert all(b.p16_bytes == 0 for b in schedule.blocks)
        assert schedule.total_swapped == pytest.approx(profile.activation_bytes_total)

    def test_needs_ssds(self):
        assert not FlashNeuronPolicy().supported_on(evaluation_server(n_ssds=0))


class TestZeroFamily:
    def test_zero_infinity_interblock_only(self, server, profile_13b_bs32):
        schedule = ZeroInfinityPolicy().compile(profile_13b_bs32, server)
        assert schedule.total_swapped == pytest.approx(
            profile_13b_bs32.inter_block_bytes, rel=1e-6
        )
        assert schedule.total_recompute_flops > 0

    def test_zero_infinity_stage_times_match_fig1a(self, server, profile_13b_bs32):
        """Paper Fig. 1a: forward 14 s, backward 26 s, optimizer 23 s."""
        result = ZeroInfinityPolicy().simulate(profile_13b_bs32, server)
        assert result.forward_time == pytest.approx(14.0, rel=0.35)
        assert result.backward_time == pytest.approx(26.0, rel=0.35)
        assert result.optimizer_time == pytest.approx(23.0, rel=0.35)

    def test_zero_infinity_gpu_busy_low(self, server, profile_13b_bs32):
        """Paper Fig. 2b: ~36% GPU busy at 13B / batch 32."""
        result = ZeroInfinityPolicy().simulate(profile_13b_bs32, server)
        assert 0.2 < result.gpu_busy_fraction < 0.45

    def test_zero_infinity_optimizer_share_30_to_60(self, server):
        """Paper Fig. 2c across batches."""
        for batch in (8, 16, 32):
            profile = profile_model(llm("13B"), batch)
            result = ZeroInfinityPolicy().simulate(profile, server)
            assert 0.25 < result.optimizer_fraction < 0.60

    def test_zero_offload_runs_without_ssds(self):
        server = evaluation_server(n_ssds=0)
        profile = profile_model(llm("6B"), 8)
        assert ZeroOffloadPolicy().feasible(profile, server)
        result = ZeroOffloadPolicy().simulate(profile, server)
        assert result.iteration_time > 0

    def test_zero_offload_needs_16_bytes_per_param_of_dram(self, server):
        profile = profile_model(llm("13B"), 1)
        needs = ZeroOffloadPolicy().memory_needs(profile, server)
        assert needs.main_bytes > 16 * profile.n_params


class TestG10:
    def test_unsupported_on_consumer_gpu(self, server):
        assert not G10Policy().supported_on(server)

    def test_simulation_mode_enables_it(self, server):
        assert G10Policy(assume_gpudirect=True).supported_on(server)

    def test_offloads_everything_without_recompute(self, server, profile_13b_bs32):
        schedule = G10Policy(assume_gpudirect=True).compile(profile_13b_bs32, server)
        assert schedule.total_recompute_flops == 0.0
        assert schedule.total_swapped == pytest.approx(
            profile_13b_bs32.activation_bytes_total, rel=1e-6
        )

    def test_optimizer_stage_dominated_by_transfers(self, server, profile_13b_bs32):
        """Paper Fig. 1b: 0.1 s of GPU work inside a ~13 s optimizer stage."""
        result = G10Policy(assume_gpudirect=True).simulate(profile_13b_bs32, server)
        assert result.optimizer_time == pytest.approx(13.0, rel=0.35)
        opt_gpu_busy = result.trace.busy_time("gpu0", *result.stage_windows["optimizer"])
        assert opt_gpu_busy < 0.15 * result.optimizer_time

    def test_ratel_g10_variant_keeps_batch_on_thin_memory(self):
        server = evaluation_server(main_memory_bytes=128 * GiB)
        profile = profile_model(llm("70B"), 32)
        assert G10ActivationPolicy().feasible(profile, server)


class TestActivationStrategies:
    def test_capuchin_caps_swap_at_host_budget(self):
        server = evaluation_server(main_memory_bytes=128 * GiB)
        profile = profile_model(llm("70B"), 16)
        policy = CapuchinPolicy()
        swap = policy.plan_swap_bytes(profile, server)
        assert swap <= server.usable_main_memory_bytes

    def test_checkmate_fails_at_128gb_for_70b(self):
        """Paper Table V: Ratel+CM 'Failed' on the 128 GB configuration."""
        server = evaluation_server(main_memory_bytes=128 * GiB)
        for batch in (4, 8, 16, 32):
            assert not CheckmatePolicy().feasible(profile_model(llm("70B"), batch), server)

    def test_checkmate_works_at_256gb(self):
        server = evaluation_server(main_memory_bytes=256 * GiB)
        assert CheckmatePolicy().feasible(profile_model(llm("70B"), 16), server)

    def test_ratel_beats_all_strategies_at_equal_batch(self):
        """Fig. 9a: holistic beats every partial-view plan, same batch."""
        server = evaluation_server(main_memory_bytes=512 * GiB)
        profile = profile_model(llm("70B"), 32)
        ratel = RatelPolicy().simulate(profile, server).tokens_per_s
        for policy in (CapuchinPolicy(), CheckmatePolicy(), G10ActivationPolicy()):
            other = policy.simulate(profile, server).tokens_per_s
            assert ratel >= other * 0.999, policy.name


class TestMegatron:
    def test_30b_fits_70b_does_not(self):
        """§V-I: 30B is the largest model Megatron-LM fits on the DGX."""
        megatron = MegatronPolicy()
        assert megatron.feasible(profile_model(llm("30B"), 8), DGX_A100)
        assert not megatron.feasible(profile_model(llm("70B"), 8), DGX_A100)

    def test_throughput_in_calibrated_range(self):
        result = MegatronPolicy().simulate(profile_model(llm("30B"), 32), DGX_A100)
        assert 2500 < result.tokens_per_s < 8000

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            MegatronPolicy(tp_efficiency=0.0)


class TestFastDiT:
    def test_oom_past_1_4b(self, server):
        """Fig. 12: Fast-DiT cannot train the 10B+ DiT models."""
        policy = FastDiTPolicy()
        assert policy.feasible(profile_model(dit("0.67B"), 1), server)
        assert not policy.feasible(profile_model(dit("10B"), 1), server)

    def test_batch_shrinks_with_model_size(self, server):
        policy = FastDiTPolicy()

        def max_batch(config):
            best = 0
            for batch in (1, 2, 4, 8, 16, 32):
                if policy.feasible(profile_model(config, batch), server):
                    best = batch
            return best

        assert max_batch(dit("0.67B")) > max_batch(dit("1.4B"))

    def test_ratel_trains_all_dit_sizes(self, server):
        ratel = RatelPolicy()
        for name in ("0.67B", "1.4B", "10B", "40B"):
            assert ratel.feasible(profile_model(dit(name), 8), server), name


class TestPolicyInterface:
    def test_infeasible_simulate_raises_with_detail(self, server):
        profile = profile_model(llm("13B"), 32)
        with pytest.raises(InfeasibleError, match="FlashNeuron"):
            FlashNeuronPolicy().simulate(profile, server)

    def test_check_false_bypasses_feasibility(self, server):
        profile = profile_model(llm("13B"), 32)
        result = FlashNeuronPolicy().simulate(profile, server, check=False)
        assert result.iteration_time > 0

    def test_offloaders_require_ssds(self):
        bare = evaluation_server(n_ssds=0)
        for policy in (RatelPolicy(), ZeroInfinityPolicy(), ColossalAIPolicy()):
            assert not policy.supported_on(bare), policy.name

    def test_ratel_variant_validation(self):
        with pytest.raises(ValueError):
            RatelPolicy("bogus")
