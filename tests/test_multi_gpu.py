"""Tests for data-parallel multi-GPU execution (paper §V-G)."""

from __future__ import annotations

import pytest

from repro.baselines import ZeroInfinityPolicy
from repro.core import RatelPolicy
from repro.core.memory_model import InfeasibleError
from repro.core.multi_gpu import max_global_batch, per_gpu_view, run_data_parallel
from repro.hardware import GiB, evaluation_server
from repro.models import llm


class TestPerGPUView:
    def test_single_gpu_view_is_identity(self, server):
        assert per_gpu_view(server) is server

    def test_view_splits_host_resources(self):
        server = evaluation_server(n_gpus=4)
        view = per_gpu_view(server)
        assert view.n_gpus == 1
        assert view.main_memory_bytes == pytest.approx(server.main_memory_bytes / 4)
        assert view.ssd_platform_bw_cap == pytest.approx(server.ssd_platform_bw_cap / 4)


class TestDataParallel:
    def test_throughput_scales_with_gpus(self):
        config = llm("13B")
        results = {}
        for n in (1, 2, 4):
            server = evaluation_server(n_gpus=n)
            results[n] = run_data_parallel(RatelPolicy(), config, 32 * n, server).tokens_per_s
        assert results[2] > 1.4 * results[1]
        assert results[4] > 1.2 * results[2]

    def test_no_superlinear_scaling(self):
        """Shared SSD/CPU resources bound the speedup at (near) ideal."""
        config = llm("70B")
        single = run_data_parallel(
            RatelPolicy(), config, 8, evaluation_server(n_gpus=1)
        ).tokens_per_s
        quad = run_data_parallel(
            RatelPolicy(), config, 32, evaluation_server(n_gpus=4)
        ).tokens_per_s
        assert quad < 4.1 * single

    def test_contended_scaling_is_sublinear(self):
        """At large per-GPU batches the shared host visibly throttles."""
        config = llm("13B")
        single = run_data_parallel(
            RatelPolicy(), config, 64, evaluation_server(n_gpus=1)
        ).tokens_per_s
        quad = run_data_parallel(
            RatelPolicy(), config, 256, evaluation_server(n_gpus=4)
        ).tokens_per_s
        assert quad < 3.9 * single

    def test_fig11_ratel_beats_zero_infinity(self):
        """Paper: 2.21x (13B) on 4 GPUs at a shared global batch."""
        server = evaluation_server(n_gpus=4)
        config = llm("13B")
        ratel = run_data_parallel(RatelPolicy(), config, 128, server).tokens_per_s
        zero = run_data_parallel(ZeroInfinityPolicy(), config, 128, server).tokens_per_s
        assert ratel > 2.0 * zero

    def test_indivisible_batch_rejected(self):
        server = evaluation_server(n_gpus=4)
        with pytest.raises(ValueError):
            run_data_parallel(RatelPolicy(), llm("13B"), 30, server)

    def test_infeasible_workload_raises(self):
        server = evaluation_server(n_gpus=4, main_memory_bytes=128 * GiB)
        with pytest.raises(InfeasibleError):
            run_data_parallel(ZeroInfinityPolicy(), llm("175B"), 32, server)

    def test_tokens_accounting(self):
        server = evaluation_server(n_gpus=2)
        result = run_data_parallel(RatelPolicy(), llm("13B"), 64, server)
        assert result.tokens_per_iteration == 64 * 1024
        assert result.tokens_per_s == pytest.approx(
            result.tokens_per_iteration / result.iteration_time
        )

    def test_optimizer_runs_once_not_per_gpu(self):
        """cpu_adam must process P params total, not n_gpus * P."""
        server = evaluation_server(n_gpus=4)
        config = llm("13B")
        result = run_data_parallel(RatelPolicy(), config, 128, server)
        from repro.models import profile_model

        n_params = profile_model(config, 1).n_params
        updated = result.trace.moved("cpu_adam")
        assert updated == pytest.approx(n_params, rel=1e-6)

    def test_every_gpu_does_compute(self):
        server = evaluation_server(n_gpus=4)
        result = run_data_parallel(RatelPolicy(), llm("13B"), 128, server)
        for i in range(4):
            assert result.trace.busy_time(f"gpu{i}") > 0


class TestConservationProperties:
    def test_gradient_traffic_scales_with_gpu_count(self):
        """Each data-parallel worker offloads a full G16 copy."""
        from repro.models import profile_model

        config = llm("13B")
        n_params = profile_model(config, 1).n_params
        for n in (2, 4):
            server = evaluation_server(n_gpus=n)
            result = run_data_parallel(RatelPolicy(), config, 32 * n, server)
            total_grads = sum(
                result.trace.moved(f"pcie_g2m{i}", label_prefix="grad") for i in range(n)
            )
            assert total_grads == pytest.approx(n * 2 * n_params, rel=1e-6)

    def test_state_reads_not_duplicated(self):
        """Only worker 0 reads P16 from SSD; others hit the page cache."""
        config = llm("13B")
        server = evaluation_server(n_gpus=4)
        result = run_data_parallel(RatelPolicy(), config, 128, server)
        from repro.models import profile_model

        p16 = profile_model(config, 1).states.p16
        ssd_p16_reads = result.trace.moved("ssd", label_prefix="fwd_p16") + result.trace.moved(
            "ssd", label_prefix="bwd_p16"
        )
        # One forward + one backward pass of P16 reads, not four.
        assert ssd_p16_reads == pytest.approx(2 * p16, rel=1e-6)

    def test_gpu_work_identical_across_workers(self):
        server = evaluation_server(n_gpus=4)
        result = run_data_parallel(RatelPolicy(), llm("13B"), 128, server)
        work = [result.trace.moved(f"gpu{i}") for i in range(4)]
        assert max(work) == pytest.approx(min(work), rel=1e-9)


class TestMaxGlobalBatch:
    def test_multiple_of_gpu_count(self):
        server = evaluation_server(n_gpus=4)
        batch = max_global_batch(RatelPolicy(), llm("13B"), server)
        assert batch > 0
        assert batch % 4 == 0

    def test_zero_when_nothing_fits(self):
        server = evaluation_server(n_gpus=4, main_memory_bytes=128 * GiB)
        assert max_global_batch(ZeroInfinityPolicy(), llm("175B"), server) == 0
