"""Tests for model accounting: configs, layer profiles, footprints."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import GB
from repro.models import (
    DIT_PRESETS,
    LLM_PRESETS,
    ModelConfigError,
    ModelStateFootprint,
    TransformerConfig,
    dit,
    dit_block_profile,
    gpt_block_profile,
    llm,
    profile_model,
    synthetic_llm,
)


class TestTableIV:
    """The LLM presets must reproduce the paper's size labels."""

    @pytest.mark.parametrize(
        "name,expected_billions",
        [("6B", 6), ("13B", 13), ("30B", 30), ("70B", 70),
         ("135B", 135), ("175B", 175), ("276B", 276), ("412B", 412)],
    )
    def test_param_counts_match_labels(self, name, expected_billions):
        assert llm(name).size_billions == pytest.approx(expected_billions, rel=0.10)

    def test_175b_matches_gpt3_hyperparameters(self):
        config = llm("175B")
        assert (config.n_layers, config.n_heads, config.hidden_dim) == (96, 96, 12288)

    def test_defaults_match_evaluation_setup(self):
        config = llm("13B")
        assert config.seq_len == 1024
        assert config.vocab_size == 50257

    def test_unknown_preset_raises(self):
        with pytest.raises(ModelConfigError):
            llm("999B")

    def test_head_dim_consistency(self):
        for config in LLM_PRESETS.values():
            assert config.head_dim * config.n_heads == config.hidden_dim

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ModelConfigError):
            TransformerConfig("bad", 2, 3, 8)

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ModelConfigError):
            TransformerConfig("bad", 0, 2, 8)


class TestTableVI:
    """The DiT presets must reproduce the paper's size labels."""

    @pytest.mark.parametrize(
        "name,expected_billions",
        [("0.67B", 0.67), ("0.90B", 0.90), ("1.4B", 1.4),
         ("10B", 10), ("20B", 20), ("40B", 40)],
    )
    def test_param_counts_match_labels(self, name, expected_billions):
        assert dit(name).size_billions == pytest.approx(expected_billions, rel=0.16)

    def test_512px_gives_1024_tokens(self):
        assert dit("0.67B").seq_len == 1024

    def test_unknown_preset_raises(self):
        with pytest.raises(ModelConfigError):
            dit("huge")


class TestSyntheticFamily:
    def test_returns_at_least_requested_size(self):
        for target in (1e9, 13e9, 100e9, 400e9):
            assert synthetic_llm(target).n_params >= target

    def test_follows_preset_shape_rule(self):
        config = synthetic_llm(175e9)
        assert config.hidden_dim == 128 * config.n_layers
        assert config.n_heads == config.n_layers

    def test_monotone_in_target(self):
        sizes = [synthetic_llm(t).n_params for t in (1e9, 5e9, 20e9, 80e9)]
        assert sizes == sorted(sizes)

    def test_rejects_nonpositive(self):
        with pytest.raises(ModelConfigError):
            synthetic_llm(0)

    @given(st.floats(min_value=1e8, max_value=5e11))
    @settings(max_examples=25, deadline=None)
    def test_tight_upper_bound(self, target):
        config = synthetic_llm(target)
        assert config.n_params >= target
        # One width step down must be below the target (minimality).
        if config.n_layers > 1:
            k = config.n_layers - 1
            smaller = TransformerConfig("s", k, k, 128 * k)
            assert smaller.n_params < target


class TestBlockProfiles:
    def test_gpt_block_totals_match_closed_form(self):
        config = llm("13B")
        batch = 32
        block = gpt_block_profile(config, batch)
        t = batch * config.seq_len
        h = config.hidden_dim
        assert block.activation_bytes == pytest.approx(32 * t * h, rel=1e-6)
        expected_flops = 24 * t * h * h + 4 * batch * config.seq_len**2 * h
        assert block.forward_flops == pytest.approx(expected_flops, rel=0.01)

    def test_boundary_is_last_segment(self):
        block = gpt_block_profile(llm("13B"), 8)
        assert block.segments[-1].name == "blk_out"
        assert block.boundary_bytes == block.segments[-1].nbytes

    def test_offloading_benefit_ordering(self):
        """blk_out must have the highest benefit; layernorms the lowest."""
        block = gpt_block_profile(llm("13B"), 8)
        benefits = {seg.name: seg.offloading_benefit for seg in block.segments}
        assert benefits["blk_out"] == max(benefits.values())
        assert benefits["ln1_out"] < benefits["gelu_out"] < benefits["qkv_out"]

    def test_activation_bytes_scale_linearly_with_batch(self):
        config = llm("13B")
        a8 = gpt_block_profile(config, 8).activation_bytes
        a16 = gpt_block_profile(config, 16).activation_bytes
        assert a16 == pytest.approx(2 * a8)

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ValueError):
            gpt_block_profile(llm("13B"), 0)

    def test_dit_block_has_adaln_segment(self):
        block = dit_block_profile(dit("0.67B"), 4)
        names = [seg.name for seg in block.segments]
        assert "adaln_out" in names
        benefits = {seg.name: seg.offloading_benefit for seg in block.segments}
        # Conditioning tensors: tiny bytes, real compute -> high benefit,
        # far above the elementwise tensors (gelu/layernorm outputs).
        assert benefits["adaln_out"] >= dit("0.67B").hidden_dim
        assert benefits["adaln_out"] > 100 * benefits["gelu_out"]


class TestModelProfile:
    def test_13b_bs32_matches_paper_anchors(self, profile_13b_bs32):
        """~213 GB of activations, ~6% inter-block, ~850 TFLOP forward."""
        p = profile_13b_bs32
        assert p.activation_bytes_total == pytest.approx(213 * GB, rel=0.05)
        fraction = p.inter_block_bytes / p.activation_bytes_total
        assert 0.05 < fraction < 0.08
        assert p.forward_flops == pytest.approx(2 * 13e9 * 32768, rel=0.05)

    def test_model_states_16_bytes_per_param(self, profile_13b_bs32):
        states = profile_13b_bs32.states
        assert states.total == pytest.approx(16 * profile_13b_bs32.n_params)

    def test_backward_is_twice_forward(self, profile_13b_bs32):
        assert profile_13b_bs32.backward_flops == pytest.approx(
            2 * profile_13b_bs32.forward_flops
        )

    def test_segments_by_benefit_starts_with_embedding(self, profile_13b_bs32):
        ordered = profile_13b_bs32.segments_by_benefit()
        assert ordered[0].name == "embed_out"
        assert ordered[0].recompute_flops == 0.0
        benefits = [seg.offloading_benefit for seg in ordered[1:]]
        assert benefits == sorted(benefits, reverse=True)

    def test_recompute_flops_boundaries(self, profile_13b_bs32):
        p = profile_13b_bs32
        full = p.recompute_flops_for(0.0)
        assert full == pytest.approx(p.n_blocks * p.block.forward_flops)
        assert p.recompute_flops_for(p.activation_bytes_total) == pytest.approx(0.0)

    def test_recompute_flops_monotone_decreasing(self, profile_13b_bs32):
        p = profile_13b_bs32
        total = p.activation_bytes_total
        values = [p.recompute_flops_for(total * i / 10) for i in range(11)]
        for earlier, later in zip(values, values[1:]):
            assert later <= earlier + 1e-6

    def test_recompute_rejects_negative(self, profile_13b_bs32):
        with pytest.raises(ValueError):
            profile_13b_bs32.recompute_flops_for(-1.0)

    @given(st.floats(min_value=0, max_value=1))
    @settings(max_examples=20, deadline=None)
    def test_recompute_interpolation_is_convex(self, fraction):
        """Eq. 7/8: the derivative -OB is increasing => midpoint convexity."""
        p = profile_model(llm("13B"), 8)
        lo = p.inter_block_bytes
        hi = p.activation_bytes_total
        x = lo + fraction * (hi - lo)
        delta = (hi - lo) / 50
        if x - delta < lo or x + delta > hi:
            return
        mid = p.recompute_flops_for(x)
        avg = (p.recompute_flops_for(x - delta) + p.recompute_flops_for(x + delta)) / 2
        assert mid <= avg + 1e-3 * abs(avg)

    def test_profile_rejects_unknown_config_type(self):
        with pytest.raises(TypeError):
            profile_model("13B", 8)


class TestFootprint:
    def test_table_ii_sizes(self):
        states = ModelStateFootprint(1e9)
        assert states.p32 == 4e9
        assert states.os32 == 8e9
        assert states.g16 == 2e9
        assert states.p16 == 2e9
        assert states.total == 16e9

    def test_optimizer_traffic(self):
        states = ModelStateFootprint(1e9)
        assert states.optimizer_read == 12e9
        assert states.optimizer_write == 14e9

    def test_175b_needs_terabytes(self):
        """The paper: fine-tuning 175B needs ~2.6-2.8 TB of states."""
        assert ModelStateFootprint(175e9).total == pytest.approx(2.8e12)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ModelStateFootprint(0)
