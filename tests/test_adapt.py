"""Tests for online adaptive resilience (:mod:`repro.adapt`).

Covers the four layers of the subsystem:

* **drift detection** — :class:`HealthMonitor` EWMAs, the hysteresis
  band between trip and recovery thresholds, typed drift events;
* **the ladder** — every rung compiles to a runnable schedule, the
  knobs (floor swap, spill share, micro-batch scale, optimizer mode)
  do what they claim, and comparisons stay in seconds-per-token;
* **the controller** — replanning on drift, cooldown, step-down when
  rung 0 stops fitting, hysteresis step-up, zero flapping on a
  noisy-but-healthy trace, metrics + ledger recording;
* **the drill** — the standard fault drill's acceptance bars: adaptive
  strictly beats the stale plan and lands within 10% of the
  replan-once oracle;
* **the runtime hook** — :class:`RuntimeHealth` walking the live
  :class:`RatelRuntime` ladder on step-time drift and injected errors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.adapt import (
    AdaptError,
    AdaptiveController,
    BandwidthDrift,
    ControllerConfig,
    DEFAULT_LADDER,
    DriftThresholds,
    DrillStep,
    DriveDrift,
    Ewma,
    HealthMonitor,
    HealthProbe,
    IOErrorDrift,
    LadderRung,
    RuntimeHealth,
    StageOverrun,
    compile_rung,
    drill_outcome,
    rung_shortfalls,
    run_drill,
    ssd_effective_bandwidth,
    standard_drill,
)
from repro.adapt.runtime_hook import RUNTIME_RUNGS
from repro.core import RatelPolicy
from repro.core.schedule import OptimizerMode
from repro.hardware import evaluation_server
from repro.models import llm, profile_model
from repro.obs.ledger import RunLedger
from repro.obs.metrics import MetricsRegistry

SSDS = 6


@pytest.fixture(scope="module")
def drill_server():
    return evaluation_server().with_ssds(SSDS)


@pytest.fixture(scope="module")
def profile_135b():
    return profile_model(llm("135B"), 40)


@pytest.fixture(scope="module")
def hardware(profile_135b, drill_server):
    return RatelPolicy().hardware_profile(profile_135b, drill_server)


# -- thresholds and EWMAs ------------------------------------------------------


class TestDriftThresholds:
    def test_defaults_form_a_hysteresis_band(self):
        th = DriftThresholds()
        assert th.bw_ratio < th.recover_ratio <= 1
        assert th.overrun_ratio > 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bw_ratio": 0.0},
            {"bw_ratio": 1.5},
            {"bw_ratio": 0.9, "recover_ratio": 0.85},  # band inverted
            {"recover_ratio": 1.1},
            {"overrun_ratio": 1.0},
            {"overrun_polls": 0},
            {"io_error_rate": -0.1},
            {"io_error_rate": 1.5},
        ],
    )
    def test_invalid_configurations_rejected(self, kwargs):
        with pytest.raises(AdaptError):
            DriftThresholds(**kwargs)


class TestEwma:
    def test_first_sample_seeds_the_average(self):
        ewma = Ewma(alpha=0.5)
        assert ewma.value is None
        assert ewma.update(4.0) == 4.0

    def test_smoothing(self):
        ewma = Ewma(alpha=0.5)
        ewma.update(1.0)
        assert ewma.update(2.0) == pytest.approx(1.5)

    def test_reset(self):
        ewma = Ewma()
        ewma.update(1.0)
        ewma.reset()
        assert ewma.value is None

    @pytest.mark.parametrize("alpha", [0.0, -0.5, 1.5])
    def test_alpha_validated(self, alpha):
        with pytest.raises(AdaptError):
            Ewma(alpha=alpha)


# -- trace bandwidth extraction ------------------------------------------------


@dataclass(frozen=True)
class _Interval:
    resource: str
    start: float
    end: float
    amount: float


@dataclass(frozen=True)
class _Trace:
    intervals: tuple


class TestEffectiveBandwidth:
    def test_sums_real_transfers(self):
        trace = _Trace(
            (
                _Interval("ssd", 0.0, 2.0, 10.0),
                _Interval("ssd", 2.0, 3.0, 5.0),
            )
        )
        assert ssd_effective_bandwidth(trace) == (15.0, 3.0)

    def test_fault_markers_do_not_inflate_busy_time(self):
        """A ``fault_bw_sag`` window is recorded with amount == 0; counting
        its duration as busy would understate the effective rate."""
        trace = _Trace(
            (
                _Interval("ssd", 0.0, 2.0, 10.0),
                _Interval("ssd", 0.0, 100.0, 0.0),  # sag marker
            )
        )
        assert ssd_effective_bandwidth(trace) == (10.0, 2.0)

    def test_other_resources_ignored(self):
        trace = _Trace((_Interval("pcie", 0.0, 1.0, 7.0),))
        assert ssd_effective_bandwidth(trace) is None

    def test_window_clips_proportionally(self):
        trace = _Trace((_Interval("ssd", 0.0, 4.0, 8.0),))
        moved, busy = ssd_effective_bandwidth(trace, window_start=2.0, window_end=4.0)
        assert moved == pytest.approx(4.0)
        assert busy == pytest.approx(2.0)

    def test_empty_window_is_none(self):
        trace = _Trace((_Interval("ssd", 0.0, 1.0, 8.0),))
        assert ssd_effective_bandwidth(trace, window_start=5.0) is None


# -- the monitor ---------------------------------------------------------------


class TestHealthMonitor:
    def test_bandwidth_trip_raises_typed_event(self, hardware):
        monitor = HealthMonitor(hardware)
        monitor.observe_bandwidth("ssd", observed_bw=5e9, expected_bw=10e9)
        events = monitor.poll()
        assert len(events) == 1
        event = events[0]
        assert isinstance(event, BandwidthDrift)
        assert event.kind == "bandwidth_sag"
        assert event.ratio == pytest.approx(0.5)
        assert not monitor.healthy()

    def test_hysteresis_band_fires_nothing(self, hardware):
        """Between trip (0.85) and recovery (0.93) a channel is neither
        drifting nor healthy — the dead zone that prevents flapping."""
        monitor = HealthMonitor(hardware)
        monitor.observe_bandwidth("ssd", observed_bw=9e9, expected_bw=10e9)
        assert monitor.poll() == []
        assert not monitor.healthy()

    def test_healthy_above_recovery_edge(self, hardware):
        monitor = HealthMonitor(hardware)
        monitor.observe_bandwidth("ssd", observed_bw=9.9e9, expected_bw=10e9)
        assert monitor.poll() == []
        assert monitor.healthy()

    def test_first_drive_observation_is_the_baseline(self, hardware):
        monitor = HealthMonitor(hardware)
        monitor.observe_drives(5)
        assert monitor.poll() == []

    def test_drive_change_fires_exactly_once(self, hardware):
        monitor = HealthMonitor(hardware)
        monitor.observe_drives(6)
        monitor.observe_drives(4)
        events = monitor.poll()
        assert events == [DriveDrift(previous=6, remaining=4)]
        assert events[0].kind == "drive_loss"
        assert monitor.poll() == []  # acknowledged

    def test_drive_restore_is_an_event_too(self, hardware):
        monitor = HealthMonitor(hardware)
        monitor.observe_drives(4)
        monitor.observe_drives(6)
        (event,) = monitor.poll()
        assert event.kind == "drive_restored"

    def test_stage_overrun_must_be_sustained(self, hardware):
        monitor = HealthMonitor(hardware)
        monitor.observe_stage("forward", observed_s=2.0, predicted_s=1.0)
        assert monitor.poll() == []  # one slow poll is not drift
        monitor.observe_stage("forward", observed_s=2.0, predicted_s=1.0)
        (event,) = monitor.poll()
        assert isinstance(event, StageOverrun)
        assert event.stage == "forward"
        assert event.polls >= 2

    def test_error_rate_trips(self, hardware):
        monitor = HealthMonitor(hardware)
        monitor.observe_errors(errors=5, operations=100)
        (event,) = monitor.poll()
        assert isinstance(event, IOErrorDrift)
        assert event.rate == pytest.approx(0.05)
        assert not monitor.healthy()

    def test_error_counters_are_cumulative(self, hardware):
        monitor = HealthMonitor(hardware)
        monitor.observe_errors(errors=0, operations=100)
        monitor.observe_errors(errors=0, operations=200)
        assert monitor.poll() == []
        assert monitor.healthy()

    def test_rebase_clears_plan_relative_state_keeps_machine_state(self, hardware):
        monitor = HealthMonitor(hardware)
        monitor.observe_bandwidth("ssd", observed_bw=5e9, expected_bw=10e9)
        monitor.observe_drives(6)
        monitor.observe_drives(5)
        monitor.poll()  # acknowledge the drive change
        monitor.rebase(hardware, None)
        assert monitor.poll() == []  # the sag ratio was priced into the replan
        assert monitor.remaining_drives == 5  # drives describe the machine

    def test_event_strings_are_human_readable(self):
        assert "lost 2 drive(s)" in str(DriveDrift(previous=6, remaining=4))
        assert "restored" in str(DriveDrift(previous=4, remaining=6))
        sag = BandwidthDrift("ssd", observed_bw=5e9, expected_bw=10e9)
        assert "50%" in str(sag)


# -- the ladder ----------------------------------------------------------------


class TestLadder:
    def test_default_ladder_rung_order(self):
        names = [rung.name for rung in DEFAULT_LADDER]
        assert names == ["planned", "recompute", "spill", "microbatch", "sync_optimizer"]

    @pytest.mark.parametrize(
        "kwargs",
        [{"batch_scale": 0.0}, {"batch_scale": 1.5}, {"ssd_spill_share": 1.0}],
    )
    def test_rung_validation(self, kwargs):
        with pytest.raises(AdaptError):
            LadderRung("bad", "invalid knobs", **kwargs)

    def test_recompute_rung_pins_the_floor(self, profile_135b, hardware):
        plan = compile_rung(DEFAULT_LADDER[1], profile_135b, hardware)
        assert plan.a_g2m == profile_135b.inter_block_bytes

    def test_spill_rung_shrinks_the_main_budget(self, profile_135b, hardware):
        plan = compile_rung(DEFAULT_LADDER[2], profile_135b, hardware)
        assert plan.hardware.mem_avail_main <= 0.5 * plan.a_g2m
        assert plan.a_to_main <= plan.hardware.mem_avail_main * (1 + 1e-9)

    def test_microbatch_rung_rescales_the_profile(self, profile_135b, hardware):
        plan = compile_rung(DEFAULT_LADDER[3], profile_135b, hardware)
        assert plan.profile.batch_size == 20
        assert "[microbatch]" in plan.schedule.name

    def test_sync_optimizer_rung_defers_the_optimizer(self, profile_135b, hardware):
        plan = compile_rung(DEFAULT_LADDER[4], profile_135b, hardware)
        assert plan.schedule.optimizer_mode == OptimizerMode.DEFERRED_CPU

    def test_planned_rung_is_fastest_at_full_batch(self, profile_135b, hardware):
        """Algorithm 1 searches a superset of every constrained full-batch
        rung, so rung 0 never loses to rungs 1-2 in seconds-per-token."""
        plans = [compile_rung(rung, profile_135b, hardware) for rung in DEFAULT_LADDER[:3]]
        assert plans[0].seconds_per_token == min(p.seconds_per_token for p in plans)

    def test_swap_split_accounting(self, profile_135b, hardware):
        plan = compile_rung(DEFAULT_LADDER[0], profile_135b, hardware)
        assert plan.a_to_main + plan.a_to_ssd == pytest.approx(plan.a_g2m)
        assert plan.a_to_main >= 0 and plan.a_to_ssd >= 0

    def test_shortfalls_empty_when_feasible(self, profile_135b, hardware, drill_server):
        plan = compile_rung(DEFAULT_LADDER[0], profile_135b, hardware)
        assert rung_shortfalls(plan, drill_server) == {}

    def test_shortfalls_name_the_overflowing_tier(self, drill_server):
        profile = profile_model(llm("135B"), 80)  # working set > 24 GB GPU
        hardware = RatelPolicy().hardware_profile(profile, drill_server)
        plan = compile_rung(DEFAULT_LADDER[0], profile, hardware)
        assert "gpu" in rung_shortfalls(plan, drill_server)


# -- the controller ------------------------------------------------------------


class TestController:
    def test_healthy_iterations_hold(self, profile_135b, drill_server):
        controller = AdaptiveController(profile_135b, drill_server)
        for _ in range(4):
            decision = controller.finish_iteration()
            assert decision.action == "hold"
        assert controller.plan_swaps == 0

    def test_noisy_but_healthy_trace_never_flaps(self, profile_135b, drill_server):
        """Acceptance bar: bandwidth hovering inside the hysteresis band
        (and wobbling across its recovery edge) causes zero plan swaps."""
        controller = AdaptiveController(profile_135b, drill_server)
        expected = 10e9
        for i in range(12):
            wobble = 0.88 if i % 2 else 0.95  # straddles recover_ratio=0.93
            controller.monitor.observe_bandwidth("ssd", wobble * expected, expected)
            controller.finish_iteration(remaining_ssds=SSDS)
        assert controller.plan_swaps == 0
        assert controller._sag == 1.0

    def test_drive_loss_triggers_replan(self, profile_135b, drill_server):
        controller = AdaptiveController(profile_135b, drill_server)
        controller.finish_iteration(remaining_ssds=SSDS)
        decision = controller.finish_iteration(remaining_ssds=SSDS - 1)
        assert decision.action == "replan"
        assert decision.events[0]["kind"] == "drive_loss"
        assert controller.current_server.n_ssds == SSDS - 1

    def test_cooldown_suppresses_reaction_to_own_swap(self, profile_135b, drill_server):
        controller = AdaptiveController(profile_135b, drill_server)
        controller.finish_iteration(remaining_ssds=SSDS)
        controller.finish_iteration(remaining_ssds=SSDS - 1)  # swap
        controller.monitor.observe_bandwidth("ssd", 1e9, 10e9)  # severe sag sample
        decision = controller.finish_iteration(remaining_ssds=SSDS - 1)
        assert decision.action == "hold"
        assert "cooldown" in decision.reason

    def test_drive_events_bypass_cooldown(self, profile_135b, drill_server):
        controller = AdaptiveController(profile_135b, drill_server)
        controller.finish_iteration(remaining_ssds=SSDS)
        controller.finish_iteration(remaining_ssds=SSDS - 1)  # swap, cooldown starts
        decision = controller.finish_iteration(remaining_ssds=SSDS - 2)
        assert decision.action == "replan"

    def test_bandwidth_sag_folds_into_the_profile(self, profile_135b, drill_server):
        controller = AdaptiveController(profile_135b, drill_server)
        expected = controller.plan.hardware.bw_s2m
        controller.monitor.observe_bandwidth("ssd", 0.5 * expected, expected)
        decision = controller.finish_iteration()
        assert decision.action == "replan"
        assert decision.events[0]["kind"] == "bandwidth_sag"
        assert controller._sag == pytest.approx(0.5)
        assert controller.plan.hardware.bw_s2m == pytest.approx(0.5 * expected)

    def test_infeasible_rung0_steps_down_to_microbatch(self, drill_server):
        """Batch 80's GPU working set overflows the 4090; the first drift
        forces a replan, rung 0-2 fail their shortfall check and the
        controller lands on the half micro-batch rung."""
        profile = profile_model(llm("135B"), 80)
        controller = AdaptiveController(profile, drill_server)
        controller.finish_iteration(remaining_ssds=SSDS)
        decision = controller.finish_iteration(remaining_ssds=SSDS - 1)
        assert decision.action == "step_down"
        assert decision.rung == "microbatch"
        assert controller.plan.profile.batch_size == 40

    def test_no_step_up_while_rung0_stays_infeasible(self, drill_server):
        profile = profile_model(llm("135B"), 80)
        controller = AdaptiveController(profile, drill_server)
        controller.finish_iteration(remaining_ssds=SSDS)
        controller.finish_iteration(remaining_ssds=SSDS - 1)  # step_down
        swaps_after_down = controller.plan_swaps
        for _ in range(6):
            controller.finish_iteration(remaining_ssds=SSDS - 1)
        assert controller.plan_swaps == swaps_after_down
        assert controller.plan.rung.name == "microbatch"

    def test_healthy_streak_steps_back_up(self, profile_135b, drill_server):
        controller = AdaptiveController(profile_135b, drill_server)
        plan1 = compile_rung(
            controller.ladder[1], profile_135b, controller._profile_hardware()
        )
        controller._adopt(1, plan1, "step_down", "test setup", [])
        controller._cooldown = 0
        actions = [controller.finish_iteration().action for _ in range(4)]
        assert actions[:3] == ["hold", "hold", "step_up"]
        assert controller.rung_index == 0
        assert controller.plan.rung.name == "planned"

    def test_recovery_requires_consecutive_healthy_polls(self, profile_135b, drill_server):
        controller = AdaptiveController(profile_135b, drill_server)
        plan1 = compile_rung(
            controller.ladder[1], profile_135b, controller._profile_hardware()
        )
        controller._adopt(1, plan1, "step_down", "test setup", [])
        controller._cooldown = 0
        controller.finish_iteration()  # healthy 1
        controller.finish_iteration()  # healthy 2
        # an in-band wobble resets the streak ...
        controller.monitor.observe_bandwidth("ssd", 8.8e9, 10e9)
        assert controller.finish_iteration().action == "hold"
        # ... so recovery needs three fresh healthy polls again
        controller.monitor.rebase(controller.plan.hardware, controller.plan.estimate)
        assert controller.finish_iteration().action == "hold"
        assert controller.finish_iteration().action == "hold"
        assert controller.finish_iteration().action == "step_up"

    def test_total_array_loss_holds_rather_than_crashing(self, profile_135b, drill_server):
        controller = AdaptiveController(profile_135b, drill_server)
        controller.finish_iteration(remaining_ssds=SSDS)
        decision = controller.finish_iteration(remaining_ssds=0)
        assert decision.action == "hold"
        assert "no feasible rung" in decision.reason

    def test_decisions_count_into_the_registry(self, profile_135b, drill_server):
        registry = MetricsRegistry()
        controller = AdaptiveController(profile_135b, drill_server, registry=registry)
        controller.finish_iteration(remaining_ssds=SSDS)
        controller.finish_iteration(remaining_ssds=SSDS - 1)
        assert registry.counter("adapt_decisions_total").value(action="hold") == 1
        assert registry.counter("adapt_decisions_total").value(action="replan") == 1
        assert registry.counter("adapt_plan_swaps_total").value() == 1
        assert (
            registry.counter("adapt_drift_events_total").value(kind="drive_loss") == 1
        )

    def test_config_validation(self):
        with pytest.raises(AdaptError):
            ControllerConfig(deadline_slack=0.9)
        with pytest.raises(AdaptError):
            ControllerConfig(recover_polls=0)
        with pytest.raises(AdaptError):
            ControllerConfig(cooldown_iters=-1)

    def test_empty_ladder_rejected(self, profile_135b, drill_server):
        with pytest.raises(AdaptError):
            AdaptiveController(profile_135b, drill_server, ladder=())


# -- the drill -----------------------------------------------------------------


class TestDrill:
    @pytest.fixture(scope="class")
    def outcome(self, tmp_path_factory):
        ledger_path = tmp_path_factory.mktemp("adapt") / "ledger.jsonl"
        ledger = RunLedger(str(ledger_path))
        outcome = drill_outcome(ledger=ledger)
        return outcome, ledger

    def test_standard_drill_shape(self):
        drill = standard_drill()
        assert len(drill) == 8
        assert any(step.dropout_count for step in drill)  # mid-iteration loss
        assert any(step.sag_factor for step in drill)  # thermal sag
        assert drill[-1] == DrillStep()  # ends healed

    def test_adaptive_beats_stale(self, outcome):
        result, _ = outcome
        m = result.metrics
        assert m["adaptive_s_per_token"] < m["stale_s_per_token"]

    def test_adaptive_within_10pct_of_oracle(self, outcome):
        result, _ = outcome
        m = result.metrics
        assert m["adaptive_s_per_token"] <= 1.1 * m["oracle_s_per_token"]

    def test_controller_actually_swapped_plans(self, outcome):
        result, _ = outcome
        assert result.metrics["plan_swaps"] >= 2  # degrade and recover

    def test_every_swap_lands_in_the_ledger_with_its_trigger(self, outcome):
        result, ledger = outcome
        entries = [e for e in ledger.entries() if e.kind == "adapt"]
        assert len(entries) == result.metrics["plan_swaps"]
        for entry in entries:
            decision = entry.metrics["decision"]
            assert decision["action"] != "hold"
            assert decision["events"] or "recovered" in decision["reason"]
            assert entry.label.startswith("adapt:")

    def test_drill_step_validation(self):
        with pytest.raises(AdaptError):
            DrillStep(n_failed=-1)
        with pytest.raises(AdaptError):
            DrillStep(sag_factor=1.5)

    def test_probe_interval_validated(self):
        with pytest.raises(AdaptError):
            HealthProbe(interval=0.0)

    def test_unknown_posture_rejected(self):
        with pytest.raises(AdaptError):
            run_drill("clairvoyant")


# -- the runtime hook ----------------------------------------------------------


class _FakeInjector:
    def __init__(self):
        self.injected_read_errors = 0
        self.injected_write_errors = 0
        self.injected_corruptions = 0


class _FakeManager:
    def __init__(self):
        self.faults = _FakeInjector()


class _FakeRuntime:
    def __init__(self):
        self.step = 0
        self.checkpoint_tier = "nvme"
        self.active_offload = True
        self.manager = _FakeManager()


class TestRuntimeHealth:
    def _feed(self, health, runtime, dt, times):
        for _ in range(times):
            runtime.step += 1
            health.on_step(runtime, dt)

    def test_validation(self):
        with pytest.raises(AdaptError):
            RuntimeHealth(warmup_steps=0)
        with pytest.raises(AdaptError):
            RuntimeHealth(recover_polls=0)

    def test_sustained_overrun_steps_down(self):
        health = RuntimeHealth(warmup_steps=3)
        runtime = _FakeRuntime()
        self._feed(health, runtime, 1.0, 3)  # baseline
        self._feed(health, runtime, 2.0, 2)  # 2x for overrun_polls=2 polls
        assert health.rung == 1
        assert runtime.checkpoint_tier != "nvme"
        assert [t[1] for t in health.transitions] == ["step_down"]
        assert health.events[-1]["kind"] == "stage_overrun"

    def test_single_slow_step_is_not_drift(self):
        health = RuntimeHealth(warmup_steps=3)
        runtime = _FakeRuntime()
        self._feed(health, runtime, 1.0, 3)
        # One 1.4x step trips the ratio EWMA once, but it decays below
        # the threshold before the second poll — not sustained drift.
        self._feed(health, runtime, 1.4, 1)
        self._feed(health, runtime, 1.0, 4)
        assert health.rung == 0
        assert health.transitions == []

    def test_second_overrun_reaches_sync_optimizer(self):
        health = RuntimeHealth(warmup_steps=2)
        runtime = _FakeRuntime()
        self._feed(health, runtime, 1.0, 2)
        self._feed(health, runtime, 2.0, 2)  # -> host_checkpoints, rebase
        self._feed(health, runtime, 2.0, 2)  # new baseline at 2.0
        self._feed(health, runtime, 4.0, 2)  # -> sync_optimizer
        assert health.rung == 2
        assert runtime.active_offload is False

    def test_recovery_steps_up_and_restores_settings(self):
        health = RuntimeHealth(warmup_steps=2, recover_polls=2)
        runtime = _FakeRuntime()
        self._feed(health, runtime, 1.0, 2)
        self._feed(health, runtime, 2.0, 2)  # step down
        assert runtime.checkpoint_tier == "host"
        self._feed(health, runtime, 1.0, 2)  # rebased baseline at 1.0
        self._feed(health, runtime, 1.0, 2)  # healthy streak
        assert health.rung == 0
        assert runtime.checkpoint_tier == "nvme"  # original restored

    def test_injected_errors_step_down_immediately(self):
        health = RuntimeHealth(warmup_steps=10)
        runtime = _FakeRuntime()
        self._feed(health, runtime, 1.0, 1)
        runtime.manager.faults.injected_read_errors = 1
        self._feed(health, runtime, 1.0, 1)
        assert health.rung == 1
        assert health.events[-1]["kind"] == "io_error"

    def test_bottom_rung_absorbs_further_drift(self):
        health = RuntimeHealth(warmup_steps=1, recover_polls=100)
        runtime = _FakeRuntime()
        for _ in range(4):
            self._feed(health, runtime, 1.0, 1)
            self._feed(health, runtime, 10.0, 2)
        assert health.rung == len(RUNTIME_RUNGS) - 1
        assert len(health.transitions) == 2  # one per rung, no repeats

    def test_registry_counts_transitions(self):
        registry = MetricsRegistry()
        health = RuntimeHealth(warmup_steps=2, registry=registry)
        runtime = _FakeRuntime()
        self._feed(health, runtime, 1.0, 2)
        self._feed(health, runtime, 2.0, 2)
        assert (
            registry.counter("adapt_runtime_transitions_total").value(
                action="step_down", rung="host_checkpoints"
            )
            == 1
        )


class TestRuntimeIntegration:
    """The hook on a live NumPy runtime: attach, monitor, flip settings."""

    GB = 1e9

    def _training_setup(self):
        from repro.runtime import (
            CrossEntropyLoss,
            GPTModel,
            RatelOptimizer,
            ratel_hook,
            ratel_init,
        )

        ctx = ratel_init(
            gpu_capacity=1 * self.GB,
            host_capacity=4 * self.GB,
            nvme_capacity=4 * self.GB,
            checkpoint_tier="host",
            states_tier="host",
            active_offload=True,
        )
        ctx.__enter__()
        model = GPTModel(53, 32, 2, 4, 16, np.random.default_rng(3))
        rt = ratel_hook(model)
        RatelOptimizer(model, rt, lr=1e-2)
        loss = CrossEntropyLoss()
        rng = np.random.default_rng(17)
        ids = rng.integers(0, 53, size=(4, 16))
        targets = np.roll(ids, -1, axis=1)
        return ctx, rt, lambda: loss(model(ids), targets), model

    def test_attach_health_validates_the_hook(self):
        ctx, runtime, loss_fn, _ = self._training_setup()
        try:
            with pytest.raises(TypeError):
                runtime.attach_health(object())
        finally:
            ctx.__exit__(None, None, None)

    def test_attached_monitor_sees_every_step(self):
        ctx, runtime, loss_fn, _ = self._training_setup()
        try:
            health = RuntimeHealth(warmup_steps=100)
            runtime.attach_health(health)
            for _ in range(3):
                runtime.train_step(loss_fn)
            assert health._seen == 3
            assert health.rung == 0  # a healthy run never transitions
        finally:
            ctx.__exit__(None, None, None)

    def test_live_sync_optimizer_flip_keeps_training(self):
        """Stepping down to the sync-optimizer rung mid-run must not lose
        updates: gradients accumulated after the flip flow through the
        deferred optimizer stage instead of the per-tensor handlers."""
        ctx, runtime, loss_fn, model = self._training_setup()
        try:
            runtime.train_step(loss_fn)
            before = [p.data.copy() for p in model.parameters()]
            runtime.active_offload = False  # what _step_down does live
            runtime.train_step(loss_fn)
            after = [p.data.copy() for p in model.parameters()]
            changed = sum(
                0 if np.array_equal(a, b) else 1 for a, b in zip(before, after)
            )
            assert changed > 0  # the deferred path still applied updates
        finally:
            ctx.__exit__(None, None, None)
