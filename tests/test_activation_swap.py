"""Tests for Algorithm 1 (holistic traffic-aware activation swapping)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    HardwareProfile,
    IterationTimeModel,
    SwapCase,
    plan_activation_swapping,
    sweep_iteration_time,
)
from repro.hardware import GB, TFLOPS
from repro.models import llm, profile_model


def make_model(batch, mem_gb, *, thp=165.0, bw_gpu=21.0, bw_ssd=32.0, name="13B"):
    hw = HardwareProfile(
        thp_gpu=thp * TFLOPS,
        bw_gpu=bw_gpu * GB,
        bw_s2m=bw_ssd * GB,
        bw_m2s=bw_ssd * GB,
        mem_avail_main=mem_gb * GB,
        cpu_adam_params_per_s=1.3e9,
    )
    return IterationTimeModel(profile_model(llm(name), batch), hw)


def brute_force_optimum(model: IterationTimeModel, n: int = 400) -> float:
    """Dense grid minimum over the valid domain (ground truth)."""
    lo = model.model.inter_block_bytes
    hi = model.model.activation_bytes_total
    best_a, best_t = lo, float("inf")
    for i in range(n + 1):
        a = lo + (hi - lo) * i / n
        t = model.iteration_time(a)
        if t < best_t:
            best_a, best_t = a, t
    return best_t


class TestAlgorithm1:
    def test_respects_interblock_floor(self):
        plan = plan_activation_swapping(make_model(24, 110))
        assert plan.a_g2m >= plan.estimate.a_g2m
        assert plan.a_g2m >= make_model(24, 110).model.inter_block_bytes * (1 - 1e-9)

    def test_split_accounting_consistent(self):
        plan = plan_activation_swapping(make_model(48, 110))
        assert plan.a_to_main + plan.a_to_ssd == pytest.approx(plan.a_g2m)
        assert plan.a_to_ssd >= 0
        assert plan.t_iter == pytest.approx(plan.estimate.total)

    def test_swapped_segments_start_with_boundaries(self):
        plan = plan_activation_swapping(make_model(48, 110))
        assert plan.swapped[0] == "embed_out"
        assert plan.swapped[1] == "blk_out"

    def test_fig9b_shape(self):
        """The paper's Fig. 9b structure on the 128 GB configuration.

        76 GB is the activation budget that server leaves after Ratel's
        pinned buffers and optimizer window.  The small-batch curve is
        transfer-dominated (its optimum hugs the A_interBlock floor — the
        paper's case 1 shape), larger batches have interior optima, and
        the optimum grows monotonically with batch size (the stars in
        Fig. 9b shift right).
        """
        optima = {}
        for batch in (24, 36, 48, 60):
            model = make_model(batch, 76)
            plan = plan_activation_swapping(model)
            floor_t = model.iteration_time(model.model.inter_block_bytes)
            optima[batch] = (plan.a_g2m, (floor_t - plan.t_iter) / floor_t)
            if batch >= 36:
                assert plan.case is SwapCase.INTERIOR
        # bs=24 is transfer-dominated: swapping barely helps (case-1-like
        # flat/rising curve), while bs=60 gains substantially from it.
        assert optima[24][1] < 0.10
        assert optima[60][1] > 0.10
        chosen = [optima[b][0] for b in (24, 36, 48, 60)]
        assert chosen == sorted(chosen)

    def test_gpu_bound_case_swaps_everything(self):
        """A very fast interconnect + slow GPU => case 2 (swap all)."""
        model = make_model(64, 5000, thp=60.0, bw_gpu=200.0, bw_ssd=200.0)
        plan = plan_activation_swapping(model)
        assert plan.case is SwapCase.GPU_BOUND
        assert plan.a_g2m == pytest.approx(model.model.activation_bytes_total, rel=0.02)

    def test_pcie_bound_case_keeps_minimum(self):
        """A fast GPU + starved links => case 1 (inter-block only).

        Main memory is nearly exhausted, so any swap beyond the floor
        spills to the starved SSDs and strictly worsens T_iter.
        """
        model = make_model(8, 2, thp=400.0, bw_gpu=4.0, bw_ssd=4.0)
        plan = plan_activation_swapping(model)
        assert plan.case is SwapCase.PCIE_BOUND
        assert plan.a_g2m == pytest.approx(model.model.inter_block_bytes, rel=1e-6)

    @given(
        batch=st.sampled_from([8, 16, 24, 32, 48, 64]),
        mem_gb=st.floats(min_value=20, max_value=700),
        thp=st.floats(min_value=40, max_value=300),
        bw_gpu=st.floats(min_value=8, max_value=50),
        bw_ssd=st.floats(min_value=4, max_value=50),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_brute_force_within_one_segment(self, batch, mem_gb, thp, bw_gpu, bw_ssd):
        """Algorithm 1's pick is optimal up to segment granularity."""
        model = make_model(batch, mem_gb, thp=thp, bw_gpu=bw_gpu, bw_ssd=bw_ssd)
        plan = plan_activation_swapping(model)
        truth = brute_force_optimum(model)
        assert plan.t_iter <= truth * 1.02 + 1e-9

    def test_plan_is_deterministic(self):
        model = make_model(48, 110)
        first = plan_activation_swapping(model)
        second = plan_activation_swapping(model)
        assert first.a_g2m == second.a_g2m
        assert first.case is second.case


class TestSweep:
    def test_sweep_covers_valid_domain(self):
        model = make_model(36, 110)
        points = sweep_iteration_time(model, 9)
        assert len(points) == 9
        assert points[0][0] == pytest.approx(model.model.inter_block_bytes)
        assert points[-1][0] == pytest.approx(model.model.activation_bytes_total)

    def test_sweep_times_positive_and_finite(self):
        for a, t in sweep_iteration_time(make_model(48, 110)):
            assert t > 0
            assert t < 1e4

    def test_predicted_optimum_beats_sweep_points(self):
        """The starred point of Fig. 9b must not be above any sweep sample."""
        model = make_model(48, 110)
        plan = plan_activation_swapping(model)
        best_sampled = min(t for _a, t in sweep_iteration_time(model, 65))
        assert plan.t_iter <= best_sampled * 1.02
