"""Tests for weight decay, LR scheduling and gradient clipping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import (
    Adam,
    CPUAdam,
    CrossEntropyLoss,
    GPTModel,
    HOST,
    LRSchedule,
    OptimizerError,
    RatelOptimizer,
    StorageManager,
    Tensor,
    clip_gradients,
    ratel_hook,
    ratel_init,
)

GB = 1e9


class TestWeightDecay:
    def test_decay_shrinks_weights_with_zero_grads(self, rng):
        param = Tensor(np.full(4, 2.0, dtype=np.float32), requires_grad=True)
        opt = Adam([("w", param)], lr=0.1, weight_decay=0.5)
        param.grad = np.zeros(4, dtype=np.float32)
        opt.step()
        # Decoupled decay: w -= lr * wd * w = 2.0 - 0.1*0.5*2.0 = 1.9.
        np.testing.assert_allclose(param.data, np.full(4, 1.9), atol=1e-6)

    def test_cpu_adam_decay_matches_reference(self, rng, tmp_path):
        manager = StorageManager(GB, GB, GB, spill_dir=str(tmp_path))
        try:
            data = rng.normal(size=(16,)).astype(np.float32)
            p_ref = Tensor(data.copy(), requires_grad=True)
            ref = Adam([("w", p_ref)], lr=1e-2, weight_decay=0.1)
            p_ooc = Tensor(data.copy(), requires_grad=True)
            ooc = CPUAdam([("w", p_ooc)], manager, lr=1e-2, weight_decay=0.1,
                          states_tier=HOST)
            for _step in range(3):
                grad = rng.normal(size=(16,)).astype(np.float16).astype(np.float32)
                p_ref.grad = grad.copy()
                ref.step()
                ooc.step_param("w", grad)
            np.testing.assert_allclose(
                ooc.master_weights("w"), p_ref.data, rtol=1e-5, atol=1e-7
            )
        finally:
            manager.close()

    def test_negative_decay_rejected(self, rng):
        param = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        with pytest.raises(OptimizerError):
            Adam([("w", param)], weight_decay=-0.1)


class TestLRSchedule:
    def test_warmup_is_linear(self):
        sched = LRSchedule(1.0, warmup_steps=10, total_steps=100)
        assert sched.at(1) == pytest.approx(0.1)
        assert sched.at(5) == pytest.approx(0.5)
        assert sched.at(10) == pytest.approx(1.0)

    def test_cosine_decays_to_min(self):
        sched = LRSchedule(1.0, warmup_steps=0, total_steps=100, min_lr=0.1)
        assert sched.at(1) < 1.0 + 1e-9
        assert sched.at(100) == pytest.approx(0.1)
        mid = sched.at(50)
        assert 0.1 < mid < 1.0

    def test_monotone_after_warmup(self):
        sched = LRSchedule(3e-4, warmup_steps=5, total_steps=50)
        rates = [sched.at(step) for step in range(5, 51)]
        assert rates == sorted(rates, reverse=True)

    def test_apply_sets_optimizer_lr(self, rng):
        param = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        opt = Adam([("w", param)], lr=1.0)
        LRSchedule(2.0, 0, 10).apply(opt, 10)
        assert opt.lr == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(OptimizerError):
            LRSchedule(0.0, 0, 10)
        with pytest.raises(OptimizerError):
            LRSchedule(1.0, 20, 10)
        with pytest.raises(OptimizerError):
            LRSchedule(1.0, 0, 10).at(0)


class TestClipping:
    def test_norm_computed_and_applied(self):
        a = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
        a.grad = np.array([3.0, 4.0, 0.0], dtype=np.float32)
        norm = clip_gradients([("a", a)], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        np.testing.assert_allclose(a.grad, [0.6, 0.8, 0.0], rtol=1e-5)

    def test_no_clip_below_threshold(self):
        a = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        a.grad = np.array([0.3, 0.4], dtype=np.float32)
        clip_gradients([("a", a)], max_norm=1.0)
        np.testing.assert_allclose(a.grad, [0.3, 0.4])

    def test_missing_grad_rejected(self):
        a = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        with pytest.raises(OptimizerError):
            clip_gradients([("a", a)], max_norm=1.0)

    def test_clipped_step_requires_deferred_mode(self, rng):
        loss_fn = CrossEntropyLoss()
        ids = rng.integers(0, 19, size=(2, 8))
        targets = np.roll(ids, -1, axis=1)
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model = GPTModel(19, 16, 2, 2, 8, np.random.default_rng(1))
            runtime = ratel_hook(model)
            RatelOptimizer(model, runtime)
            with pytest.raises(RuntimeError, match="active"):
                runtime.train_step_clipped(lambda: loss_fn(model(ids), targets), 1.0)

    def test_clipped_step_trains_in_deferred_mode(self, rng):
        loss_fn = CrossEntropyLoss()
        ids = rng.integers(0, 19, size=(2, 8))
        targets = np.roll(ids, -1, axis=1)
        with ratel_init(
            gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB,
            active_offload=False,
        ):
            model = GPTModel(19, 16, 2, 2, 8, np.random.default_rng(1))
            runtime = ratel_hook(model)
            RatelOptimizer(model, runtime, lr=1e-2)
            losses = []
            for _step in range(4):
                loss, norm = runtime.train_step_clipped(
                    lambda: loss_fn(model(ids), targets), max_grad_norm=0.5
                )
                losses.append(loss)
                assert norm > 0
            assert losses[-1] < losses[0]
