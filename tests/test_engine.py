"""Tests for the discrete-event iteration engine."""

from __future__ import annotations

import pytest

from repro.core import (
    IterationTimeModel,
    OptimizerMode,
    RatelPolicy,
    StatesLocation,
    build_blocks,
    run_iteration,
)
from repro.core.schedule import IterationSchedule
from repro.hardware import GB, evaluation_server
from repro.models import llm, profile_model


def simple_schedule(profile, mode=OptimizerMode.ACTIVE_OPTIMIZED, **kwargs):
    blocks = build_blocks(
        profile,
        act_to_main_total=profile.inter_block_bytes,
        act_to_ssd_total=0.0,
        recompute_flops_total=profile.recompute_flops_for(profile.inter_block_bytes),
    )
    return IterationSchedule(
        name="test",
        model=profile,
        blocks=blocks,
        states_location=StatesLocation.SSD,
        optimizer_mode=mode,
        **kwargs,
    )


class TestScheduleConstruction:
    def test_build_blocks_conserves_totals(self, profile_13b_bs32):
        p = profile_13b_bs32
        blocks = build_blocks(
            p,
            act_to_main_total=30 * GB,
            act_to_ssd_total=10 * GB,
            recompute_flops_total=1e15,
        )
        assert sum(b.act_to_main for b in blocks) == pytest.approx(30 * GB)
        assert sum(b.act_to_ssd for b in blocks) == pytest.approx(10 * GB)
        assert sum(b.recompute_flops for b in blocks) == pytest.approx(1e15)
        assert sum(b.fwd_flops for b in blocks) == pytest.approx(p.forward_flops)
        assert sum(b.opt_params for b in blocks) == pytest.approx(p.n_params)

    def test_head_flops_attach_to_last_block(self, profile_13b_bs32):
        blocks = build_blocks(
            profile_13b_bs32,
            act_to_main_total=0.0,
            act_to_ssd_total=0.0,
            recompute_flops_total=0.0,
        )
        assert blocks[-1].fwd_flops > blocks[0].fwd_flops

    def test_states_offloaded_false_zeroes_traffic(self, profile_13b_bs32):
        blocks = build_blocks(
            profile_13b_bs32,
            act_to_main_total=0.0,
            act_to_ssd_total=0.0,
            recompute_flops_total=0.0,
            states_offloaded=False,
        )
        assert all(b.p16_bytes == 0 and b.grad_bytes == 0 and b.opt_params == 0 for b in blocks)

    def test_schedule_validation(self, profile_13b_bs32):
        with pytest.raises(ValueError):
            simple_schedule(profile_13b_bs32, prefetch_depth=0)
        with pytest.raises(ValueError):
            simple_schedule(profile_13b_bs32, ssd_efficiency=1.5)
        with pytest.raises(ValueError):
            simple_schedule(profile_13b_bs32, sync_overhead_per_block=-1.0)


class TestEngineConservation:
    """Every byte and FLOP the schedule specifies must appear in the trace."""

    def test_gpu_flops_conserved(self, server, profile_13b_bs32):
        schedule = simple_schedule(profile_13b_bs32)
        result = run_iteration(server, schedule)
        gpu_work = result.trace.moved("gpu0")
        expected = (
            profile_13b_bs32.forward_flops
            + profile_13b_bs32.backward_flops
            + schedule.total_recompute_flops
        )
        assert gpu_work == pytest.approx(expected, rel=1e-6)

    def test_gradient_bytes_conserved(self, server, profile_13b_bs32):
        result = run_iteration(server, simple_schedule(profile_13b_bs32))
        grads = result.trace.moved("pcie_g2m0", label_prefix="grad")
        assert grads == pytest.approx(profile_13b_bs32.states.g16, rel=1e-6)

    def test_activation_traffic_conserved(self, server, profile_13b_bs32):
        schedule = simple_schedule(profile_13b_bs32)
        result = run_iteration(server, schedule)
        out = result.trace.moved("pcie_g2m0", label_prefix="act_out")
        back = result.trace.moved("pcie_m2g0", label_prefix="act_back")
        assert out == pytest.approx(schedule.total_swapped, rel=1e-6)
        assert back == pytest.approx(schedule.total_swapped, rel=1e-6)

    def test_optimizer_state_traffic(self, server, profile_13b_bs32):
        result = run_iteration(server, simple_schedule(profile_13b_bs32))
        states = profile_13b_bs32.states
        reads = result.trace.moved("ssd", label_prefix="opt_read")
        writes = result.trace.moved("ssd", label_prefix="opt_write")
        assert reads == pytest.approx(states.optimizer_read, rel=1e-6)
        assert writes == pytest.approx(states.optimizer_write, rel=1e-6)

    def test_cpu_adam_updates_every_parameter(self, server, profile_13b_bs32):
        result = run_iteration(server, simple_schedule(profile_13b_bs32))
        updated = result.trace.moved("cpu_adam")
        assert updated == pytest.approx(profile_13b_bs32.n_params, rel=1e-6)


class TestStageWindows:
    def test_active_mode_has_no_optimizer_stage(self, server, profile_13b_bs32):
        result = run_iteration(server, simple_schedule(profile_13b_bs32))
        assert result.optimizer_time == 0.0
        assert "optimizer" not in result.stage_windows

    def test_deferred_mode_has_optimizer_stage(self, server, profile_13b_bs32):
        schedule = simple_schedule(profile_13b_bs32, mode=OptimizerMode.DEFERRED_CPU)
        result = run_iteration(server, schedule)
        assert result.optimizer_time > 1.0
        assert result.optimizer_fraction > 0.1

    def test_windows_are_contiguous(self, server, profile_13b_bs32):
        schedule = simple_schedule(profile_13b_bs32, mode=OptimizerMode.DEFERRED_CPU)
        result = run_iteration(server, schedule)
        fwd = result.stage_windows["forward"]
        bwd = result.stage_windows["backward"]
        opt = result.stage_windows["optimizer"]
        assert fwd[0] == 0.0
        assert fwd[1] == bwd[0]
        assert bwd[1] == opt[0]
        assert result.iteration_time == pytest.approx(opt[1])

    def test_metrics_are_consistent(self, server, profile_13b_bs32):
        result = run_iteration(server, simple_schedule(profile_13b_bs32))
        tokens = profile_13b_bs32.tokens_per_iteration
        assert result.tokens_per_s == pytest.approx(tokens / result.iteration_time)
        assert 0 < result.gpu_busy_fraction <= 1.0


class TestOptimizerModes:
    """The Fig. 3/7 ordering: optimized <= naive <= deferred iteration time."""

    def test_fig3_ordering(self, server, profile_13b_bs32):
        times = {}
        for mode in (
            OptimizerMode.ACTIVE_OPTIMIZED,
            OptimizerMode.ACTIVE_NAIVE,
            OptimizerMode.DEFERRED_CPU,
        ):
            result = run_iteration(server, simple_schedule(profile_13b_bs32, mode=mode))
            times[mode] = result.iteration_time
        assert times[OptimizerMode.ACTIVE_OPTIMIZED] <= times[OptimizerMode.ACTIVE_NAIVE]
        assert times[OptimizerMode.ACTIVE_OPTIMIZED] < times[OptimizerMode.DEFERRED_CPU]

    def test_serial_deferred_slower_than_pipelined(self, server, profile_13b_bs32):
        pipelined = run_iteration(
            server, simple_schedule(profile_13b_bs32, mode=OptimizerMode.DEFERRED_CPU)
        )
        serial = run_iteration(
            server,
            simple_schedule(profile_13b_bs32, mode=OptimizerMode.DEFERRED_CPU_SERIAL),
        )
        assert serial.optimizer_time > pipelined.optimizer_time

    def test_gpu_optimizer_transfers_states(self, server, profile_13b_bs32):
        schedule = simple_schedule(profile_13b_bs32, mode=OptimizerMode.DEFERRED_GPU)
        result = run_iteration(server, schedule)
        inbound = result.trace.moved("pcie_m2g0", label_prefix="opt_in")
        assert inbound == pytest.approx(profile_13b_bs32.states.optimizer_read, rel=1e-6)


class TestAgreementWithAnalyticModel:
    def test_des_within_25_percent_of_eq15(self, server):
        """The engine realises the schedule Eqs. 1-5 assume, so the two
        must agree up to pipeline fill/drain and FIFO-interleaving effects."""
        policy = RatelPolicy()
        for batch in (16, 32, 64):
            profile = profile_model(llm("13B"), batch)
            plan = policy.plan(profile, server)
            analytic = plan.t_iter
            simulated = policy.simulate(profile, server).iteration_time
            assert simulated == pytest.approx(analytic, rel=0.25)

    def test_efficiency_knob_slows_ssd(self, server, profile_13b_bs32):
        fast = run_iteration(
            server, simple_schedule(profile_13b_bs32, mode=OptimizerMode.DEFERRED_CPU)
        )
        slow = run_iteration(
            server,
            simple_schedule(
                profile_13b_bs32, mode=OptimizerMode.DEFERRED_CPU, ssd_efficiency=0.5
            ),
        )
        assert slow.optimizer_time > fast.optimizer_time

    def test_sync_overhead_stretches_stages(self, server, profile_13b_bs32):
        clean = run_iteration(server, simple_schedule(profile_13b_bs32))
        bubbled = run_iteration(
            server, simple_schedule(profile_13b_bs32, sync_overhead_per_block=0.2)
        )
        n = profile_13b_bs32.n_blocks
        extra = bubbled.iteration_time - clean.iteration_time
        assert extra == pytest.approx(2 * n * 0.2, rel=0.35)
