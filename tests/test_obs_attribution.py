"""Tests for bottleneck attribution (:mod:`repro.obs.attribution`).

Synthetic traces with known busy/stall/idle geometry verify the
accounting exactly; a real simulated iteration checks the report ties
back to the engine's stage times and Algorithm-1's plan.
"""

from __future__ import annotations

import json

import pytest

from repro.core import RatelPolicy
from repro.hardware import evaluation_server
from repro.models import llm, profile_model
from repro.obs.attribution import MODEL_TO_TRACE, AttributionReport, attribute
from repro.sim.trace import Trace


def synthetic_trace():
    """Stage window [0, 10]: gpu busy 0-6, ssd busy 4-9, dead air 9-10."""
    trace = Trace()
    trace.record("gpu0", "kernel", 0.0, 6.0, 0.0)
    trace.record("ssd", "io", 4.0, 9.0, 0.0)
    return trace


class TestAccounting:
    @pytest.fixture()
    def report(self):
        return attribute(synthetic_trace(), {"stage": (0.0, 10.0)})

    def test_busy_seconds(self, report):
        stage = report.stage("stage")
        assert stage.usage("gpu0").busy_s == pytest.approx(6.0)
        assert stage.usage("ssd").busy_s == pytest.approx(5.0)

    def test_union_and_idle(self, report):
        # Union busy = [0, 9] = 9 s, so 1 s of dead air.
        assert report.stage("stage").idle_s == pytest.approx(1.0)

    def test_stall_is_union_minus_busy(self, report):
        stage = report.stage("stage")
        assert stage.usage("gpu0").stall_s == pytest.approx(3.0)  # 9 - 6
        assert stage.usage("ssd").stall_s == pytest.approx(4.0)  # 9 - 5

    def test_bottleneck_is_busiest_resource(self, report):
        assert report.stage("stage").bottleneck == "gpu0"

    def test_utilization(self, report):
        assert report.stage("stage").usage("gpu0").utilization == pytest.approx(0.6)

    def test_resources_sorted_by_busy(self, report):
        rows = report.stage("stage").resources
        assert [row.resource for row in rows] == ["gpu0", "ssd"]

    def test_iteration_time_is_last_window_end(self):
        report = attribute(
            synthetic_trace(), {"a": (0.0, 4.0), "b": (4.0, 10.0)}
        )
        assert report.iteration_time == pytest.approx(10.0)

    def test_window_clipping(self):
        report = attribute(synthetic_trace(), {"early": (0.0, 5.0)})
        stage = report.stage("early")
        assert stage.usage("gpu0").busy_s == pytest.approx(5.0)
        assert stage.usage("ssd").busy_s == pytest.approx(1.0)
        assert stage.idle_s == pytest.approx(0.0)

    def test_empty_window_has_no_bottleneck(self):
        report = attribute(Trace(), {"void": (0.0, 1.0)})
        stage = report.stage("void")
        assert stage.bottleneck == ""
        assert stage.idle_s == pytest.approx(1.0)

    def test_unknown_stage_raises(self):
        report = attribute(synthetic_trace(), {"stage": (0.0, 10.0)})
        with pytest.raises(KeyError):
            report.stage("nope")


class FakeStageTime:
    def __init__(self, total, components):
        self.total = total
        self.components = components


class FakeEstimate:
    def __init__(self):
        self.stage = FakeStageTime(9.5, {"ssd": 9.5, "gpu": 3.0})
        self.total = 9.5


class TestPrediction:
    def test_predicted_vs_actual(self):
        report = attribute(
            synthetic_trace(), {"stage": (0.0, 10.0)}, predicted=FakeEstimate()
        )
        assert report.predicted_time == pytest.approx(9.5)
        assert report.prediction_error == pytest.approx((10.0 - 9.5) / 9.5)
        stage = report.stage("stage")
        assert stage.predicted_s == pytest.approx(9.5)
        # Component names map through MODEL_TO_TRACE to trace lanes.
        assert stage.predicted_bottleneck == MODEL_TO_TRACE["ssd"] == "ssd"

    def test_no_prediction_means_none(self):
        report = attribute(synthetic_trace(), {"stage": (0.0, 10.0)})
        assert report.predicted_time is None
        assert report.prediction_error is None

    def test_render_flags_bottleneck_disagreement(self):
        report = attribute(
            synthetic_trace(), {"stage": (0.0, 10.0)}, predicted=FakeEstimate()
        )
        text = report.render()
        # Plan said ssd binds, the trace says gpu0 does — the report says so.
        assert "plan expected ssd" in text


class TestRender:
    def test_table_contents(self):
        text = attribute(synthetic_trace(), {"stage": (0.0, 10.0)}).render()
        assert "bound by gpu0" in text
        assert "busy_s" in text and "stall_s" in text
        assert "idle 1.0 s" in text
        assert text.strip().endswith("iteration: 10.0 s")

    def test_render_includes_plan_line(self):
        text = attribute(
            synthetic_trace(), {"stage": (0.0, 10.0)}, predicted=FakeEstimate()
        ).render()
        assert "(planned 9.5 s, +5% vs plan)" in text


class TestPayload:
    def test_round_trip(self):
        report = attribute(
            synthetic_trace(), {"stage": (0.0, 10.0)}, predicted=FakeEstimate()
        )
        payload = json.loads(json.dumps(report.to_payload()))
        rebuilt = AttributionReport.from_payload(payload)
        assert rebuilt.iteration_time == pytest.approx(report.iteration_time)
        assert rebuilt.predicted_time == pytest.approx(report.predicted_time)
        stage = rebuilt.stage("stage")
        assert stage.bottleneck == "gpu0"
        assert stage.usage("gpu0").busy_s == pytest.approx(6.0)
        assert stage.usage("ssd").stall_s == pytest.approx(4.0)
        assert stage.usage("gpu0").utilization == pytest.approx(0.6)


class TestOnSimulatedIteration:
    @pytest.fixture(scope="class")
    def outcome(self):
        return RatelPolicy().evaluate(
            profile_model(llm("13B"), 32), evaluation_server()
        )

    def test_outcome_carries_attribution(self, outcome):
        report = outcome.attribution()
        assert report is not None
        stages = {b.stage for b in report.stages}
        assert {"forward", "backward"} <= stages

    def test_iteration_time_matches_engine(self, outcome):
        report = outcome.attribution()
        assert report.iteration_time == pytest.approx(
            outcome.iteration_time, rel=1e-6
        )

    def test_plan_rides_along(self, outcome):
        report = outcome.attribution()
        assert report.predicted_time is not None
        assert outcome.predicted_iteration_time == pytest.approx(report.predicted_time)
        # Algorithm 1's model tracks the engine within a loose band.
        assert abs(report.prediction_error) < 0.5

    def test_every_stage_has_a_binding_resource(self, outcome):
        for breakdown in outcome.attribution().stages:
            assert breakdown.bottleneck != ""

    def test_survives_metrics_round_trip(self, outcome):
        payload = json.loads(json.dumps(outcome.to_payload()))
        from repro.core.evaluation import EvalOutcome

        rebuilt = EvalOutcome.from_payload(payload)
        report = rebuilt.attribution()
        assert report is not None
        assert report.iteration_time == pytest.approx(outcome.iteration_time)
