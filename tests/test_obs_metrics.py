"""Tests for the metrics registry (:mod:`repro.obs.metrics`).

Covers the instrument semantics (counters, gauges, histograms with
labels), the snapshot/merge model that ships worker metrics across
process boundaries, both exporters, and the acceptance criterion:
metrics from a 2-worker process-pool sweep merge into a single registry
snapshot with correct counts.
"""

from __future__ import annotations

import json

import pytest

from repro.core import RatelPolicy
from repro.hardware import evaluation_server
from repro.models import llm
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsError,
    MetricsRegistry,
    RegistrySnapshot,
    default_registry,
    reset_default_registry,
)
from repro.runner import Sweep, SweepPoint

SERVER = evaluation_server()
CONFIG = llm("13B")


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labels_are_independent_series(self):
        counter = MetricsRegistry().counter("events_total")
        counter.inc(kind="a")
        counter.inc(kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 2
        assert counter.value(kind="b") == 1
        assert counter.value(kind="missing") == 0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("events_total")
        with pytest.raises(MetricsError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12

    def test_labelled(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(1, tier="gpu")
        gauge.set(2, tier="host")
        assert gauge.value(tier="gpu") == 1
        assert gauge.value(tier="host") == 2


class TestHistogram:
    def test_count_and_sum(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in (0.002, 0.02, 0.2):
            histogram.observe(value)
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(0.222)

    def test_overflow_bucket_catches_tail(self):
        histogram = MetricsRegistry().histogram("latency", buckets=(1.0, 2.0))
        histogram.observe(100.0)
        (sample,) = histogram._collect()
        assert sample.overflow == 1
        assert all(count == 0 for _bound, count in sample.buckets)

    def test_needs_buckets(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().histogram("empty", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(MetricsError):
            registry.gauge("a")
        with pytest.raises(MetricsError):
            registry.histogram("a")

    def test_default_registry_is_process_wide(self):
        reset_default_registry()
        try:
            assert default_registry() is default_registry()
        finally:
            reset_default_registry()


class TestSnapshot:
    def test_value_and_get(self):
        registry = MetricsRegistry()
        registry.counter("events_total").inc(3, kind="x")
        snapshot = registry.snapshot()
        assert snapshot.value("events_total", kind="x") == 3
        assert snapshot.value("events_total", kind="y") == 0
        assert snapshot.get("missing") is None

    def test_payload_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2, kind="x")
        registry.gauge("g").set(7)
        registry.histogram("h").observe(0.3)
        payload = registry.snapshot().to_payload()
        rebuilt = RegistrySnapshot.from_payload(json.loads(json.dumps(payload)))
        assert rebuilt.value("c", kind="x") == 2
        assert rebuilt.value("g") == 7
        histogram = rebuilt.get("h")
        assert histogram.count == 1
        assert histogram.value == pytest.approx(0.3)
        assert len(histogram.buckets) == len(DEFAULT_BUCKETS)


class TestMerge:
    @staticmethod
    def _snapshot(build):
        registry = MetricsRegistry()
        build(registry)
        return registry.snapshot()

    def test_counters_add(self):
        a = self._snapshot(lambda r: r.counter("c").inc(2, kind="x"))
        b = self._snapshot(lambda r: r.counter("c").inc(3, kind="x"))
        assert a.merged(b).value("c", kind="x") == 5

    def test_disjoint_labels_kept_apart(self):
        a = self._snapshot(lambda r: r.counter("c").inc(2, kind="x"))
        b = self._snapshot(lambda r: r.counter("c").inc(3, kind="y"))
        merged = a.merged(b)
        assert merged.value("c", kind="x") == 2
        assert merged.value("c", kind="y") == 3

    def test_gauges_keep_latest(self):
        a = self._snapshot(lambda r: r.gauge("g").set(1))
        b = self._snapshot(lambda r: r.gauge("g").set(9))
        assert a.merged(b).value("g") == 9

    def test_histograms_add_bucketwise(self):
        a = self._snapshot(lambda r: r.histogram("h").observe(0.002))
        b = self._snapshot(lambda r: r.histogram("h").observe(0.002))
        sample = a.merged(b).get("h")
        assert sample.count == 2
        assert sample.buckets[1][1] == 2  # both landed in the 0.005 bucket

    def test_kind_conflict_raises(self):
        a = self._snapshot(lambda r: r.counter("m").inc())
        b = self._snapshot(lambda r: r.gauge("m").set(1))
        with pytest.raises(MetricsError):
            a.merged(b)

    def test_registry_merge_folds_into_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1)
        registry.merge(self._snapshot(lambda r: r.counter("c").inc(4)))
        assert registry.snapshot().value("c") == 5


class TestExporters:
    @staticmethod
    def _registry():
        registry = MetricsRegistry()
        registry.counter("events_total").inc(3, kind="a")
        registry.gauge("depth").set(2)
        histogram = registry.histogram("latency", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        return registry

    def test_jsonl_lines_parse(self):
        lines = self._registry().snapshot().to_jsonl().splitlines()
        payloads = [json.loads(line) for line in lines]
        assert {p["name"] for p in payloads} == {"events_total", "depth", "latency"}

    def test_prometheus_type_headers(self):
        text = self._registry().snapshot().to_prometheus()
        assert "# TYPE events_total counter" in text
        assert "# TYPE depth gauge" in text
        assert "# TYPE latency histogram" in text
        assert 'events_total{kind="a"} 3' in text

    def test_prometheus_histogram_is_cumulative(self):
        text = self._registry().snapshot().to_prometheus()
        assert 'latency_bucket{le="0.1"} 1' in text
        assert 'latency_bucket{le="1"} 2' in text
        assert 'latency_bucket{le="+Inf"} 3' in text
        assert "latency_count 3" in text

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(error='He said "hi"\nbye')
        text = registry.snapshot().to_prometheus()
        assert '\\"hi\\"' in text and "\\n" in text

    def test_prometheus_escapes_backslashes_first(self):
        # A literal backslash must come out as \\ — and escaping it after
        # the quote/newline passes would corrupt those sequences, so the
        # value below exercises all three at once.
        registry = MetricsRegistry()
        registry.counter("c").inc(path='C:\\logs\n"run"')
        text = registry.snapshot().to_prometheus()
        assert 'path="C:\\\\logs\\n\\"run\\""' in text


class TestSweepMetrics:
    """The sweep meters its own orchestration through the registry."""

    def test_serial_sweep_counts_misses_and_hits(self):
        sweep = Sweep()
        points = [
            SweepPoint.evaluate(RatelPolicy(), CONFIG, batch, SERVER) for batch in (8, 16)
        ]
        sweep.run(points)
        sweep.run(points)
        snapshot = sweep.metrics()
        assert snapshot.value("sweep_cache_misses_total", kind="evaluate") == 2
        assert snapshot.value("sweep_cache_hits_total", kind="evaluate") == 2

    def test_progress_events_metered(self):
        sweep = Sweep()
        sweep.run([SweepPoint.evaluate(RatelPolicy(), CONFIG, 8, SERVER)])
        snapshot = sweep.metrics()
        assert snapshot.value(
            "sweep_progress_events_total", kind="evaluate", status="computed"
        ) == 1

    def test_process_pool_workers_merge_into_one_snapshot(self):
        """Acceptance: 2-worker pool metrics collapse to correct totals."""
        sweep = Sweep(executor="process", max_workers=2)
        points = [
            SweepPoint.evaluate(RatelPolicy(), CONFIG, batch, SERVER)
            for batch in (8, 16, 32)
        ]
        sweep.run(points)
        snapshot = sweep.metrics()
        # Every point was computed in some worker; the shipped-back
        # snapshots merged, so the total is exact regardless of which
        # worker took which point.
        assert snapshot.value("worker_points_total", kind="evaluate") == 3
        assert snapshot.value("sweep_cache_misses_total", kind="evaluate") == 3
        timing = snapshot.get("worker_compute_seconds", kind="evaluate")
        assert timing is not None and timing.count == 3
