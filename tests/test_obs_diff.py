"""Tests for the run-diff engine (:mod:`repro.obs.diff`).

The acceptance scenario from the subsystem's design: two synthetic runs
where run B carries an injected SSD slowdown in the backward stage must
diff to "backward regressed because SSD busy rose; binding resource
flipped GPU→SSD" — the same sentence the paper's Eqs. 4–5 analysis
produces.
"""

from __future__ import annotations

import pytest

from repro.obs.diff import diff_attributions, diff_entries, diff_traces
from repro.obs.ledger import LedgerEntry
from repro.sim import Trace


def _baseline_trace() -> tuple[Trace, dict[str, tuple[float, float]]]:
    """GPU-bound everywhere: forward (0-2 s), backward (2-6 s)."""
    trace = Trace()
    trace.record("gpu0", "fwd", 0.0, 1.8, 0.0)
    trace.record("ssd", "prefetch", 0.5, 1.5, 0.0)
    trace.record("gpu0", "bwd", 2.0, 5.6, 0.0)
    trace.record("ssd", "swap", 2.5, 4.5, 0.0)
    return trace, {"forward": (0.0, 2.0), "backward": (2.0, 6.0)}


def _slowed_trace() -> tuple[Trace, dict[str, tuple[float, float]]]:
    """Same forward; backward stretched to 8 s by SSD saturation."""
    trace = Trace()
    trace.record("gpu0", "fwd", 0.0, 1.8, 0.0)
    trace.record("ssd", "prefetch", 0.5, 1.5, 0.0)
    trace.record("gpu0", "bwd", 2.0, 5.6, 0.0)
    trace.record("ssd", "swap", 2.2, 7.8, 0.0)
    return trace, {"forward": (0.0, 2.0), "backward": (2.0, 8.0)}


@pytest.fixture(scope="module")
def slowdown_diff():
    trace_a, windows_a = _baseline_trace()
    trace_b, windows_b = _slowed_trace()
    return diff_traces(
        trace_a, windows_a, trace_b, windows_b, label_a="before", label_b="after"
    )


class TestInjectedSlowdown:
    def test_iteration_regressed(self, slowdown_diff):
        assert slowdown_diff.iteration_a == pytest.approx(6.0)
        assert slowdown_diff.iteration_b == pytest.approx(8.0)
        assert slowdown_diff.regressed(10.0)
        assert slowdown_diff.delta_pct == pytest.approx(100 * 2.0 / 6.0)

    def test_names_the_correct_stage(self, slowdown_diff):
        regressions = slowdown_diff.regressions(10.0)
        assert [delta.stage for delta in regressions] == ["backward"]
        assert not slowdown_diff.stage("forward").delta_s

    def test_blames_the_ssd(self, slowdown_diff):
        dominant = slowdown_diff.stage("backward").dominant()
        assert dominant is not None
        assert dominant.resource == "ssd"
        assert dominant.delta_s == pytest.approx(5.6 - 2.0)

    def test_binding_resource_flips_gpu_to_ssd(self, slowdown_diff):
        backward = slowdown_diff.stage("backward")
        assert backward.bottleneck_a == "gpu0"
        assert backward.bottleneck_b == "ssd"
        assert backward.binding_flipped

    def test_narrative_mentions_flip_and_ssd(self, slowdown_diff):
        text = slowdown_diff.render()
        assert "backward" in text
        assert "ssd busy" in text
        assert "flipped gpu0→ssd" in text

    def test_payload_is_machine_readable(self, slowdown_diff):
        payload = slowdown_diff.to_payload()
        assert payload["delta_pct"] == pytest.approx(100 * 2.0 / 6.0)
        backward = payload["stages"][1]
        assert backward["stage"] == "backward"
        assert backward["binding_flipped"] is True
        assert backward["dominant_resource"] == "ssd"
        assert backward["bottleneck_a"] == "gpu0"
        assert backward["bottleneck_b"] == "ssd"


class TestDiffSemantics:
    def test_identical_runs_unchanged(self):
        trace_a, windows_a = _baseline_trace()
        trace_b, windows_b = _baseline_trace()
        diff = diff_traces(trace_a, windows_a, trace_b, windows_b)
        assert not diff.regressed(10.0)
        assert diff.regressions(10.0) == []
        assert "unchanged" in diff.render()

    def test_improvement_is_not_a_regression(self):
        trace_a, windows_a = _slowed_trace()
        trace_b, windows_b = _baseline_trace()
        diff = diff_traces(trace_a, windows_a, trace_b, windows_b)
        assert not diff.regressed(10.0)
        assert diff.delta_s == pytest.approx(-2.0)
        assert "improved" in diff.render()

    def test_threshold_is_respected(self, slowdown_diff):
        assert slowdown_diff.regressed(10.0)
        assert not slowdown_diff.regressed(50.0)
        assert slowdown_diff.regressions(50.0) == []

    def test_stage_only_in_one_run(self):
        trace_a, windows_a = _baseline_trace()
        trace_b, windows_b = _baseline_trace()
        windows_b = dict(windows_b)
        windows_b["optimizer"] = (8.0, 9.0)
        trace_b.record("cpu_adam", "step", 8.0, 9.0, 0.0)
        diff = diff_traces(trace_a, windows_a, trace_b, windows_b)
        optimizer = diff.stage("optimizer")
        assert optimizer.only_in == "b"
        # unaligned stages never count as regressions
        assert all(d.stage != "optimizer" for d in diff.regressions(0.0))


def _entry(label: str, report_payload, *, config_key="k", git_sha="", **metrics):
    return LedgerEntry(
        label=label,
        policy="Ratel",
        model="13B",
        batch_size=8,
        server="test",
        feasible=True,
        metrics={"attribution": report_payload, **metrics},
        config_key=config_key,
        git_sha=git_sha,
    )


class TestDiffEntries:
    def _payloads(self):
        from repro.obs.attribution import attribute

        trace_a, windows_a = _baseline_trace()
        trace_b, windows_b = _slowed_trace()
        return (
            attribute(trace_a, windows_a).to_payload(),
            attribute(trace_b, windows_b).to_payload(),
        )

    def test_diffs_embedded_attribution(self):
        payload_a, payload_b = self._payloads()
        diff = diff_entries(
            _entry("run", payload_a, tokens_per_s=100.0),
            _entry("run", payload_b, tokens_per_s=75.0),
        )
        assert diff.regressed(10.0)
        assert diff.stage("backward").binding_flipped
        assert diff.scalars_a["tokens_per_s"] == 100.0
        assert diff.scalars_b["tokens_per_s"] == 75.0

    def test_label_includes_git_sha(self):
        payload_a, payload_b = self._payloads()
        diff = diff_entries(
            _entry("run", payload_a, git_sha="a" * 40),
            _entry("run", payload_b, git_sha="b" * 40),
        )
        assert diff.label_a == "run@" + "a" * 10
        assert diff.label_b == "run@" + "b" * 10

    def test_config_drift_noted(self):
        payload_a, payload_b = self._payloads()
        diff = diff_entries(
            _entry("run", payload_a, config_key="old"),
            _entry("run", payload_b, config_key="new"),
        )
        assert any("config keys differ" in note for note in diff.notes)

    def test_label_mismatch_noted(self):
        payload_a, payload_b = self._payloads()
        diff = diff_entries(_entry("x", payload_a), _entry("y", payload_b))
        assert any("labels differ" in note for note in diff.notes)

    def test_missing_attribution_degrades_gracefully(self):
        diff = diff_entries(
            LedgerEntry(
                label="run", policy="p", model="m", batch_size=1, server="s",
                feasible=True, metrics={"iteration_time": 5.0},
            ),
            LedgerEntry(
                label="run", policy="p", model="m", batch_size=1, server="s",
                feasible=True, metrics={"iteration_time": 7.0},
            ),
        )
        assert diff.stages == []
        assert diff.regressed(10.0)  # falls back to scalar iteration times
        assert any("no attribution" in note for note in diff.notes)


class TestDiffAttributions:
    def test_round_trip_through_payload(self):
        from repro.obs.attribution import AttributionReport, attribute

        trace_a, windows_a = _baseline_trace()
        trace_b, windows_b = _slowed_trace()
        report_a = AttributionReport.from_payload(
            attribute(trace_a, windows_a).to_payload()
        )
        report_b = AttributionReport.from_payload(
            attribute(trace_b, windows_b).to_payload()
        )
        diff = diff_attributions(report_a, report_b)
        assert diff.stage("backward").bottleneck_b == "ssd"
        assert diff.regressed(10.0)
