"""Tests for the capacity planner (max model size / max batch)."""

from __future__ import annotations

import pytest

from repro.baselines import FlashNeuronPolicy, ZeroInfinityPolicy, ZeroOffloadPolicy
from repro.core import (
    RatelPolicy,
    check_feasible,
    max_batch_size,
    max_trainable_params,
)
from repro.hardware import GiB, evaluation_server
from repro.models import llm, profile_model


class TestFeasibilityReport:
    def test_feasible_has_no_shortfalls(self, server):
        report = check_feasible(RatelPolicy(), profile_model(llm("13B"), 32), server)
        assert report.feasible
        assert report.shortfalls == {}

    def test_infeasible_names_the_tier(self, server):
        report = check_feasible(FlashNeuronPolicy(), profile_model(llm("13B"), 1), server)
        assert not report.feasible
        assert "gpu" in report.shortfalls

    def test_unsupported_hardware_flagged(self):
        bare = evaluation_server(n_ssds=0)
        report = check_feasible(RatelPolicy(), profile_model(llm("6B"), 1), bare)
        assert not report.feasible
        assert "hardware" in report.shortfalls


class TestMaxTrainableParams:
    def test_fig6_anchor_points(self, server):
        """The Fig. 6 frontier at 768 GB: Ratel >> ZeRO-Infinity >> Offload."""
        ratel = max_trainable_params(RatelPolicy(), server)
        zero_inf = max_trainable_params(ZeroInfinityPolicy(), server)
        zero_off = max_trainable_params(ZeroOffloadPolicy(), server)
        assert ratel >= 276e9
        assert 100e9 < zero_inf < 200e9  # paper: 135B
        assert 30e9 < zero_off < 70e9  # paper: ~40B
        assert ratel > 1.8 * zero_inf  # paper: 2.04x

    def test_flashneuron_frontier_is_tiny(self, server):
        """Paper: FlashNeuron tops out around 1.55B."""
        assert max_trainable_params(FlashNeuronPolicy(), server) == pytest.approx(
            1.55e9, rel=0.25
        )

    def test_monotone_in_main_memory(self):
        sizes = []
        for mem_gb in (128, 256, 512, 768):
            server = evaluation_server(main_memory_bytes=mem_gb * GiB)
            sizes.append(max_trainable_params(RatelPolicy(), server))
        assert sizes == sorted(sizes)

    def test_monotone_in_batch(self, server):
        big = max_trainable_params(RatelPolicy(), server, batch_size=1)
        small = max_trainable_params(RatelPolicy(), server, batch_size=64)
        assert small <= big

    def test_returns_zero_when_nothing_fits(self):
        bare = evaluation_server(n_ssds=0)
        assert max_trainable_params(RatelPolicy(), bare) == 0.0

    def test_result_is_actually_feasible(self, server):
        from repro.models import synthetic_llm

        best = max_trainable_params(RatelPolicy(), server)
        config = synthetic_llm(best)
        assert RatelPolicy().feasible(profile_model(config, 1), server)


class TestMaxBatchSize:
    def test_respects_cap(self, server):
        batch = max_batch_size(RatelPolicy(), llm("13B"), server, cap=32)
        assert batch == 32

    def test_shrinks_with_model_size(self, server):
        small = max_batch_size(RatelPolicy(), llm("13B"), server)
        large = max_batch_size(RatelPolicy(), llm("175B"), server)
        assert large < small

    def test_zero_when_infeasible(self, server):
        assert max_batch_size(FlashNeuronPolicy(), llm("13B"), server) == 0

    def test_result_is_feasible_and_next_is_not(self, server):
        batch = max_batch_size(RatelPolicy(), llm("175B"), server)
        assert batch > 0
        assert RatelPolicy().feasible(profile_model(llm("175B"), batch), server)
