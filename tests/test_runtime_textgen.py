"""Tests for the char-LM utilities and end-to-end learning under Ratel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import (
    CharTokenizer,
    CrossEntropyLoss,
    GPTModel,
    RatelOptimizer,
    generate,
    ratel_hook,
    ratel_init,
    sample_batches,
)

GB = 1e9
CORPUS = "the quick brown fox jumps over the lazy dog. " * 20


class TestTokenizer:
    def test_roundtrip(self):
        tok = CharTokenizer(CORPUS)
        text = "the lazy fox"
        assert tok.decode(tok.encode(text)) == text

    def test_vocab_is_distinct_chars(self):
        tok = CharTokenizer("aabbc")
        assert tok.vocab_size == 3

    def test_unknown_char_rejected(self):
        tok = CharTokenizer("abc")
        with pytest.raises(ValueError):
            tok.encode("xyz")

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            CharTokenizer("")


class TestBatching:
    def test_targets_are_shifted_inputs(self):
        tok = CharTokenizer(CORPUS)
        ids = tok.encode(CORPUS)
        rng = np.random.default_rng(0)
        for inputs, targets in sample_batches(ids, 8, 4, 3, rng):
            assert inputs.shape == targets.shape == (4, 8)
            np.testing.assert_array_equal(inputs[:, 1:], targets[:, :-1])

    def test_short_corpus_rejected(self):
        with pytest.raises(ValueError):
            list(sample_batches(np.arange(5), 8, 2, 1, np.random.default_rng(0)))


class TestEndToEndLearning:
    @pytest.fixture(scope="class")
    def trained(self):
        tok = CharTokenizer(CORPUS)
        ids = tok.encode(CORPUS)
        rng = np.random.default_rng(0)
        loss_fn = CrossEntropyLoss()
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB):
            model = GPTModel(tok.vocab_size, 32, 2, 2, 16, np.random.default_rng(1))
            runtime = ratel_hook(model)
            RatelOptimizer(model, runtime, lr=5e-3)
            losses = []
            for inputs, targets in sample_batches(ids, 16, 8, 60, rng):
                losses.append(
                    runtime.train_step(lambda: loss_fn(model(inputs), targets))
                )
            sample = generate(model, tok, "the qu", max_new=12)
            return losses, sample, tok

    def test_loss_drops_substantially(self, trained):
        losses, _sample, _tok = trained
        assert losses[-1] < 0.5 * losses[0]

    def test_generation_continues_the_pattern(self, trained):
        _losses, sample, _tok = trained
        assert sample.startswith("the qu")
        # A trained model should continue "the qu" with "ick".
        assert "the quick" in sample

    def test_temperature_sampling_is_seeded(self, trained):
        _losses, _sample, tok = trained
        model = GPTModel(tok.vocab_size, 16, 1, 2, 8, np.random.default_rng(2))
        a = generate(model, tok, "the", 8, temperature=1.0, rng=np.random.default_rng(3))
        b = generate(model, tok, "the", 8, temperature=1.0, rng=np.random.default_rng(3))
        assert a == b

    def test_negative_temperature_rejected(self, trained):
        _losses, _sample, tok = trained
        model = GPTModel(tok.vocab_size, 16, 1, 2, 8, np.random.default_rng(2))
        with pytest.raises(ValueError):
            generate(model, tok, "the", 4, temperature=-1.0)
