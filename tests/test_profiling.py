"""Tests for the executed hardware-aware profiling stage (§IV-B)."""

from __future__ import annotations

import pytest

from repro.core import (
    IterationTimeModel,
    RatelPolicy,
    plan_activation_swapping,
    profiling_schedule,
    run_profiling,
)
from repro.core.profiling import ProfilingRunError
from repro.hardware import GB, TFLOPS, evaluation_server
from repro.models import llm, profile_model


class TestMeasuredProfile:
    @pytest.fixture(scope="class")
    def report(self):
        return run_profiling(profile_model(llm("13B"), 32), evaluation_server())

    def test_measured_thp_matches_spec(self, report):
        assert report.hardware.thp_gpu == pytest.approx(165 * TFLOPS, rel=0.02)

    def test_measured_pcie_matches_spec(self, report):
        assert report.hardware.bw_gpu == pytest.approx(21 * GB, rel=0.02)

    def test_measured_ssd_matches_spec(self, report):
        assert report.hardware.bw_s2m == pytest.approx(32 * GB, rel=0.02)
        assert report.hardware.bw_m2s == pytest.approx(32 * GB, rel=0.02)

    def test_measured_cpu_adam_matches_spec(self, report):
        assert report.hardware.cpu_adam_params_per_s == pytest.approx(1.3e9, rel=0.02)

    def test_overhead_in_papers_2_to_3x_band(self, report):
        """The paper: profiling takes ~2-3x a subsequent iteration."""
        assert 1.5 < report.overhead_vs_ratel < 3.5

    def test_stage_times_recorded(self, report):
        assert report.forward_time > 0
        assert report.backward_time > 0
        assert report.optimizer_time > 0
        assert report.iteration_time == pytest.approx(
            report.forward_time + report.backward_time + report.optimizer_time
        )

    def test_planning_on_measured_profile_matches_spec_profile(self, report):
        """Algorithm 1 fed with *measured* numbers must make the same
        decision as with spec-derived numbers — the profiling loop closes."""
        profile = profile_model(llm("13B"), 32)
        server = evaluation_server()
        measured_plan = plan_activation_swapping(
            IterationTimeModel(profile, report.hardware)
        )
        spec_plan = RatelPolicy().plan(profile, server)
        assert measured_plan.a_g2m == pytest.approx(spec_plan.a_g2m, rel=0.02)
        assert measured_plan.case is spec_plan.case


class TestProfilingSchedule:
    def test_is_conservative(self):
        profile = profile_model(llm("13B"), 32)
        schedule = profiling_schedule(profile)
        assert schedule.total_swapped == pytest.approx(profile.inter_block_bytes)
        assert schedule.prefetch_depth == 1
        assert schedule.optimizer_mode.value == "deferred_cpu"

    def test_requires_ssds(self):
        with pytest.raises(ProfilingRunError):
            run_profiling(profile_model(llm("6B"), 1), evaluation_server(n_ssds=0))
