"""Property-based tests of the functional offload engine.

The no-staleness equivalence must hold for *any* architecture, batch
shape, learning rate and checkpoint tier — not just the fixtures the
unit tests pin down.  Hypothesis drives random (tiny) configurations
through both execution modes and demands bit-identical parameters.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import (
    CrossEntropyLoss,
    GPTModel,
    HOST,
    NVME,
    RatelOptimizer,
    ratel_hook,
    ratel_init,
)

GB = 1e9


def train(seed, layers, dim, heads, seq, batch, lr, tier, active, steps=2):
    loss_fn = CrossEntropyLoss()
    rng = np.random.default_rng(seed)
    vocab = 23
    with ratel_init(
        gpu_capacity=GB,
        host_capacity=GB,
        nvme_capacity=4 * GB,
        checkpoint_tier=tier,
        active_offload=active,
    ):
        model = GPTModel(vocab, dim, layers, heads, seq, np.random.default_rng(seed + 1))
        runtime = ratel_hook(model)
        RatelOptimizer(model, runtime, lr=lr)
        losses = []
        for _step in range(steps):
            ids = rng.integers(0, vocab, size=(batch, seq))
            targets = np.roll(ids, -1, axis=1)
            losses.append(runtime.train_step(lambda: loss_fn(model(ids), targets)))
        return losses, {name: p.data.copy() for name, p in model.named_parameters()}


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    layers=st.integers(min_value=1, max_value=4),
    dim_heads=st.sampled_from([(8, 2), (16, 2), (16, 4), (24, 3)]),
    seq=st.sampled_from([4, 8, 12]),
    batch=st.integers(min_value=1, max_value=4),
    lr=st.floats(min_value=1e-4, max_value=5e-2),
    tier=st.sampled_from([HOST, NVME]),
)
@settings(max_examples=12, deadline=None)
def test_active_equals_deferred_for_random_architectures(
    seed, layers, dim_heads, seq, batch, lr, tier
):
    dim, heads = dim_heads
    active_losses, active_params = train(seed, layers, dim, heads, seq, batch, lr, tier, True)
    deferred_losses, deferred_params = train(seed, layers, dim, heads, seq, batch, lr, tier, False)
    assert active_losses == deferred_losses
    for name in active_params:
        np.testing.assert_array_equal(active_params[name], deferred_params[name])


@given(
    seed=st.integers(min_value=0, max_value=1000),
    layers=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=8, deadline=None)
def test_training_is_deterministic(seed, layers):
    """Same seeds => byte-identical runs (spill round trips included)."""
    first = train(seed, layers, 16, 2, 8, 2, 1e-2, NVME, True)
    second = train(seed, layers, 16, 2, 8, 2, 1e-2, NVME, True)
    assert first[0] == second[0]
    for name in first[1]:
        np.testing.assert_array_equal(first[1][name], second[1][name])


@given(seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=6, deadline=None)
def test_losses_are_finite(seed):
    losses, params = train(seed, 2, 16, 2, 8, 2, 1e-2, NVME, True, steps=3)
    assert all(np.isfinite(loss) for loss in losses)
    for value in params.values():
        assert np.isfinite(value).all()
