"""Tests for the sequence-length extension experiment."""

from __future__ import annotations

from repro.experiments import ext_seq_len


class TestSeqLenSweep:
    def test_runs_all_lengths(self):
        result = ext_seq_len.run()
        assert [row[0] for row in result.rows] == [512, 1024, 2048, 4096]

    def test_token_budget_held_constant(self):
        result = ext_seq_len.run()
        for row in result.rows:
            assert row[0] * row[1] == 32768

    def test_longer_sequences_swap_more(self):
        """The quadratic attention term raises offloading benefits with s."""
        result = ext_seq_len.run()
        swapped = result.column("A*_GB")
        assert swapped == sorted(swapped)

    def test_throughput_declines_gently_with_seq(self):
        """Quadratic attention costs tokens/s, but only a few percent per
        doubling at these lengths."""
        result = ext_seq_len.run()
        tput = result.column("token/s")
        assert tput == sorted(tput, reverse=True)
        assert tput[-1] > 0.8 * tput[0]
