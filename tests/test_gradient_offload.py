"""Tests for the closed-form Fig.-3 gradient-offload analysis."""

from __future__ import annotations

import pytest

from repro.core import (
    RatelPolicy,
    analyze_gradient_offload,
    overlap_pays,
)
from repro.hardware import EVALUATION_SERVER
from repro.models import llm, profile_model


def timelines(batch, name="13B"):
    profile = profile_model(llm(name), batch)
    hardware = RatelPolicy().hardware_profile(profile, EVALUATION_SERVER)
    return profile, hardware, analyze_gradient_offload(profile, hardware)


class TestOrdering:
    @pytest.mark.parametrize("batch", [8, 16, 32, 64])
    def test_optimized_is_fastest(self, batch):
        _p, _hw, t = timelines(batch)
        assert t.optimized <= t.naive + 1e-9
        assert t.optimized <= t.deferred + 1e-9

    def test_speedups_consistent(self):
        _p, _hw, t = timelines(32)
        assert t.optimized_vs_naive == pytest.approx(t.naive / t.optimized)
        assert t.optimized_vs_deferred == pytest.approx(t.deferred / t.optimized)


class TestPaperObservations:
    def test_active_offloading_pays_on_the_evaluation_server(self):
        for batch in (8, 16, 32, 64):
            profile = profile_model(llm("13B"), batch)
            hardware = RatelPolicy().hardware_profile(profile, EVALUATION_SERVER)
            assert overlap_pays(profile, hardware)

    def test_gain_saturates_when_backward_dominates(self):
        """At very large batches backward hides everything: optimized ~
        backward span, so opt/naive shrinks toward 1 (Fig. 7's flip side)."""
        _p8, _hw8, t8 = timelines(8)
        _p64, _hw64, t64 = timelines(64)
        assert t64.optimized_vs_naive < t8.optimized_vs_naive


class TestEngineCrossCheck:
    @pytest.mark.parametrize("batch", [16, 32])
    def test_deferred_matches_engine_within_30_percent(self, batch):
        """The closed form and the DES must tell the same story."""
        from repro.core.profiling import profiling_schedule
        from repro.core import run_iteration

        profile, hardware, t = timelines(batch)
        schedule = profiling_schedule(profile)  # deferred, inter-block plan
        result = run_iteration(EVALUATION_SERVER, schedule)
        engine_deferred = result.backward_time + result.optimizer_time
        assert t.deferred == pytest.approx(engine_deferred, rel=0.30)

    def test_ratio_direction_matches_fig7_engine_results(self):
        """Analytic opt-vs-deferred gain and the simulated Fig. 7 gain
        agree in direction and rough magnitude at batch 32."""
        from repro.experiments.common import evaluate_point

        profile, hardware, t = timelines(32)
        optimized = evaluate_point(
            RatelPolicy("optimized"), llm("13B"), 32, EVALUATION_SERVER
        ).tokens_per_s
        zero = evaluate_point(
            RatelPolicy("zero"), llm("13B"), 32, EVALUATION_SERVER
        ).tokens_per_s
        simulated_gain = optimized / zero
        assert simulated_gain > 1.1
        assert t.optimized_vs_deferred == pytest.approx(simulated_gain, rel=0.45)
