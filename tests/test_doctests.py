"""Run the doctest examples embedded in docstrings."""

from __future__ import annotations

import doctest

import repro.hardware.units as units


def test_units_doctests():
    result = doctest.testmod(units)
    assert result.attempted > 0
    assert result.failed == 0
