"""Tests for the functional DiT model under Ratel's offload engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import (
    AdaLNBlock,
    DiTModel,
    RatelOptimizer,
    Tensor,
    denoising_loss,
    ratel_hook,
    ratel_init,
    timestep_embedding,
)

GB = 1e9


def make_batch(rng, batch=4):
    clean = rng.normal(size=(batch, 4, 8, 8)).astype(np.float32)
    noise = rng.normal(size=(batch, 4, 8, 8)).astype(np.float32)
    timesteps = rng.integers(0, 1000, size=batch)
    labels = rng.integers(0, 10, size=batch)
    return clean + noise, noise, timesteps, labels


def train_dit(active_offload: bool, n_steps: int = 3):
    rng = np.random.default_rng(7)
    with ratel_init(
        gpu_capacity=GB, host_capacity=GB, nvme_capacity=4 * GB,
        active_offload=active_offload,
    ):
        model = DiTModel(dim=16, n_layers=2, n_heads=2, rng=np.random.default_rng(1))
        runtime = ratel_hook(model)
        RatelOptimizer(model, runtime, lr=1e-2)
        losses = []
        for _step in range(n_steps):
            noised, noise, t, y = make_batch(rng)
            losses.append(
                runtime.train_step(lambda: denoising_loss(model, noised, noise, t, y))
            )
        params = {name: p.data.copy() for name, p in model.named_parameters()}
    return losses, params


class TestTimestepEmbedding:
    def test_shape_and_range(self):
        emb = timestep_embedding(np.array([0, 500, 999]), 16)
        assert emb.shape == (3, 16)
        assert np.abs(emb).max() <= 1.0

    def test_distinct_timesteps_distinct_embeddings(self):
        emb = timestep_embedding(np.array([1, 2]), 16)
        assert not np.allclose(emb[0], emb[1])

    def test_odd_dim_padded(self):
        assert timestep_embedding(np.array([3]), 15).shape == (1, 15)


class TestAdaLNBlock:
    def test_adaln_zero_is_identity_at_init(self, rng):
        """Zero-initialized gates close both branches: block(x) == x."""
        block = AdaLNBlock(16, 2, rng)
        x = Tensor(rng.normal(size=(2, 4, 16)).astype(np.float32))
        c = Tensor(rng.normal(size=(2, 16)).astype(np.float32))
        np.testing.assert_allclose(block(x, c).data, x.data, atol=1e-6)

    def test_conditioning_changes_output_after_training_signal(self, rng):
        block = AdaLNBlock(16, 2, rng)
        block.modulation.weight.data[:] = rng.normal(size=(16, 96)) * 0.1
        x = Tensor(rng.normal(size=(2, 4, 16)).astype(np.float32))
        c1 = Tensor(rng.normal(size=(2, 16)).astype(np.float32))
        c2 = Tensor(rng.normal(size=(2, 16)).astype(np.float32))
        assert not np.allclose(block(x, c1).data, block(x, c2).data)

    def test_modulation_receives_gradients(self, rng):
        block = AdaLNBlock(16, 2, rng)
        x = Tensor(rng.normal(size=(2, 4, 16)).astype(np.float32), requires_grad=True)
        c = Tensor(rng.normal(size=(2, 16)).astype(np.float32), requires_grad=True)
        block(x, c).sum().backward()
        assert block.modulation.bias.grad is not None
        assert np.abs(block.modulation.bias.grad).sum() > 0


class TestDiTModel:
    def test_output_is_patch_prediction(self, rng):
        model = DiTModel(dim=16, n_layers=1, n_heads=2, rng=rng)
        noised, _noise, t, y = make_batch(np.random.default_rng(0))
        out = model(noised, t, y)
        assert out.shape == (4, 16, 16)  # (batch, tokens, patch_elems)

    def test_patchify_preserves_volume(self, rng):
        model = DiTModel(dim=16, n_layers=1, n_heads=2, rng=rng)
        latent = rng.normal(size=(2, 4, 8, 8)).astype(np.float32)
        patches = model.patchify_latent(latent)
        assert patches.size == latent.size
        assert patches.shape == (2, 16, 16)

    def test_rejects_indivisible_patching(self, rng):
        with pytest.raises(ValueError):
            DiTModel(dim=16, n_layers=1, n_heads=2, rng=rng, latent_side=7)

    def test_table_vi_shape_rule(self, rng):
        """Block parameters follow the 18 h^2 accounting used in Table VI."""
        dim = 16
        block = AdaLNBlock(dim, 2, rng)
        expected = 18 * dim * dim  # attn 4h^2 + mlp 8h^2 + modulation 6h^2
        weights = sum(
            p.size for name, p in block.named_parameters() if name.endswith("weight")
            and "ln" not in name
        )
        assert weights == expected


class TestDiTUnderRatel:
    def test_training_reduces_denoising_loss(self):
        losses, _params = train_dit(active_offload=True, n_steps=6)
        assert losses[-1] < losses[0]

    def test_active_equals_deferred_bitwise(self):
        """No staleness holds for the multi-input (x, c) checkpoint path."""
        active_losses, active_params = train_dit(active_offload=True)
        deferred_losses, deferred_params = train_dit(active_offload=False)
        assert active_losses == deferred_losses
        for name in active_params:
            np.testing.assert_array_equal(active_params[name], deferred_params[name])

    def test_conditioning_path_trains(self):
        _losses, params = train_dit(active_offload=True, n_steps=4)
        fresh = DiTModel(dim=16, n_layers=2, n_heads=2, rng=np.random.default_rng(1))
        initial = dict(fresh.named_parameters())
        moved = np.abs(params["time_mlp.weight"] - initial["time_mlp.weight"].data).max()
        assert moved > 0
