"""The scoped self-profiler (:mod:`repro.obs.profile`).

Attribution on a real cold sweep, the two flamegraph exports (speedscope
JSON and collapsed stacks), the event-loop hot-spot counters, and the
scope's safety contract: no nesting, hook restored whatever happens.
"""

from __future__ import annotations

import json

import pytest

from repro.core import RatelPolicy
from repro.hardware import evaluation_server
from repro.models import llm
from repro.obs.profile import EventLoopStats, ProfileError, profile
from repro.runner import Sweep
from repro.sim import engine


@pytest.fixture(scope="module")
def cold_sweep_report():
    """Profile one genuinely cold 13B/b32 evaluation (plan + full sim)."""
    with profile() as report:
        outcome = Sweep().evaluate(
            RatelPolicy(), llm("13B"), 32, evaluation_server(), detail=True
        )
    assert outcome.feasible
    return report


class TestAttribution:
    def test_attributes_most_of_wall_time(self, cold_sweep_report):
        # The acceptance bar: >= 90% of the cold sweep's wall time lands
        # on named functions (cProfile covers everything but the tiny
        # slices between enable and the first call event).
        assert cold_sweep_report.attributed_fraction() >= 0.90

    def test_event_loop_in_top_frames(self, cold_sweep_report):
        labels = [stat.label for stat in cold_sweep_report.top(15)]
        assert any("sim.engine:run" in label for label in labels), labels

    def test_top_sorted_by_own_time(self, cold_sweep_report):
        top = cold_sweep_report.top(10)
        assert all(a.own_s >= b.own_s for a, b in zip(top, top[1:]))

    def test_render_mentions_the_headline(self, cold_sweep_report):
        text = cold_sweep_report.render()
        assert "attributed" in text
        assert "sim event loop" in text


class TestEventCounters:
    def test_counts_real_event_types(self, cold_sweep_report):
        stats = cold_sweep_report.event_stats
        assert stats.total_events > 0
        # The engine's three workhorse event types all fire in a full
        # simulation; their busy time is the loop's hot-spot ranking.
        assert "Process" in stats.counts
        assert "Timeout" in stats.counts
        top = stats.top(3)
        assert len(top) == 3
        assert all(a[2] >= b[2] for a, b in zip(top, top[1:]))

    def test_events_false_skips_the_hook(self):
        with profile(events=False) as report:
            Sweep().evaluate(RatelPolicy(), llm("6B"), 8, evaluation_server())
        assert report.event_stats.total_events == 0
        assert report.wall_s > 0

    def test_dispatch_counts_and_times(self):
        stats = EventLoopStats()

        class Fake:
            def fire(self, arg):
                pass

        stats.dispatch(Fake().fire, None)
        stats.dispatch(Fake().fire, None)
        assert stats.counts == {"Fake": 2}
        assert stats.busy_s["Fake"] >= 0


class TestExports:
    def test_speedscope_document_shape(self, cold_sweep_report):
        doc = cold_sweep_report.to_speedscope("test")
        assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
        prof = doc["profiles"][0]
        assert prof["type"] == "sampled"
        assert len(prof["samples"]) == len(prof["weights"])
        n_frames = len(doc["shared"]["frames"])
        assert all(0 <= i < n_frames for stack in prof["samples"] for i in stack)
        assert prof["endValue"] == pytest.approx(sum(prof["weights"]))

    def test_speedscope_writes_loadable_json(self, cold_sweep_report, tmp_path):
        path = str(tmp_path / "p.speedscope.json")
        cold_sweep_report.write_speedscope(path)
        doc = json.load(open(path))
        assert doc["profiles"][0]["samples"]

    def test_collapsed_stacks_fold(self, cold_sweep_report, tmp_path):
        path = str(tmp_path / "p.folded.txt")
        cold_sweep_report.write_collapsed(path)
        lines = open(path).read().splitlines()
        assert lines
        for line in lines:
            frames, _, weight = line.rpartition(" ")
            assert frames and int(weight) >= 1

    def test_stacks_are_rooted_chains(self, cold_sweep_report):
        # Every stack ends at its own function (leaf) and the leaf label
        # matches a known function.
        labels = {stat.label for stat in cold_sweep_report.functions}
        for frames, weight in cold_sweep_report.stacks[:50]:
            assert frames[-1] in labels
            assert weight > 0


class TestScopeSafety:
    def test_nested_scope_raises(self):
        with profile(events=False):
            with pytest.raises(ProfileError):
                with profile(events=False):
                    pass

    def test_nested_failure_does_not_wedge_the_guard(self):
        # After the nested attempt above, a fresh scope must still work.
        with profile(events=False) as report:
            sum(range(100))
        assert report.wall_s >= 0

    def test_event_hook_restored_after_scope(self):
        sentinel_calls = []

        def sentinel(callback, arg):
            sentinel_calls.append(callback)
            callback(arg)

        previous = engine.set_event_hook(sentinel)
        try:
            with profile():
                pass
            assert engine._event_hook is sentinel
        finally:
            engine.set_event_hook(previous)

    def test_event_hook_restored_on_error(self):
        assert engine._event_hook is None
        with pytest.raises(RuntimeError):
            with profile():
                raise RuntimeError("boom")
        assert engine._event_hook is None
