"""Tests for the three-tier storage manager (capacities, spill, traffic)."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import (
    GPU,
    HOST,
    NVME,
    StorageError,
    StorageManager,
    TierCapacityError,
)

MB = 10**6


@pytest.fixture
def manager(tmp_path):
    mgr = StorageManager(10 * MB, 10 * MB, 100 * MB, spill_dir=str(tmp_path))
    yield mgr
    mgr.close()


class TestCapacities:
    def test_allocation_tracked(self, manager, rng):
        array = rng.normal(size=(1000,)).astype(np.float32)
        stored = manager.put("x", array, GPU, itemsize=2)
        assert stored.nbytes == 2000
        assert manager.tiers[GPU].used_bytes == 2000

    def test_capacity_enforced(self, manager, rng):
        big = rng.normal(size=(6 * MB,)).astype(np.float32)
        with pytest.raises(TierCapacityError):
            manager.put("big", big, GPU, itemsize=2)  # 12 MB > 10 MB

    def test_peak_tracking(self, manager, rng):
        a = manager.put("a", rng.normal(size=(1000,)), GPU)
        manager.put("b", rng.normal(size=(2000,)), GPU)
        manager.drop(a)
        assert manager.tiers[GPU].peak_bytes == 6000
        assert manager.tiers[GPU].used_bytes == 4000

    def test_move_frees_source(self, manager, rng):
        stored = manager.put("x", rng.normal(size=(1000,)), GPU)
        manager.move(stored, HOST)
        assert manager.tiers[GPU].used_bytes == 0
        assert manager.tiers[HOST].used_bytes == stored.nbytes

    def test_duplicate_name_rejected(self, manager, rng):
        manager.put("x", rng.normal(size=(10,)), GPU)
        with pytest.raises(StorageError):
            manager.put("x", rng.normal(size=(10,)), GPU)

    def test_unknown_tier_rejected(self, manager, rng):
        with pytest.raises(StorageError):
            manager.put("x", rng.normal(size=(10,)), "tape")


class TestTrafficAccounting:
    def test_direct_links(self, manager, rng):
        stored = manager.put("x", rng.normal(size=(1000,)), GPU, itemsize=2)
        manager.move(stored, HOST)
        manager.move(stored, NVME)
        assert manager.traffic(GPU, HOST) == 2000
        assert manager.traffic(HOST, NVME) == 2000
        assert manager.traffic(NVME, HOST) == 0

    def test_gpu_to_nvme_bounces_through_host(self, manager, rng):
        """No GPUDirect on consumer GPUs: both hops are charged."""
        stored = manager.put("x", rng.normal(size=(1000,)), GPU, itemsize=2)
        manager.move(stored, NVME)
        assert manager.traffic(GPU, HOST) == 2000
        assert manager.traffic(HOST, NVME) == 2000
        manager.move(stored, GPU)
        assert manager.traffic(NVME, HOST) == 2000
        assert manager.traffic(HOST, GPU) == 2000

    def test_noop_move_counts_nothing(self, manager, rng):
        stored = manager.put("x", rng.normal(size=(1000,)), GPU, itemsize=2)
        manager.move(stored, GPU)
        assert all(v == 0 for v in manager.moved_bytes.values())


class TestSpill:
    def test_nvme_really_spills_to_disk(self, manager, rng, tmp_path):
        stored = manager.put("x", rng.normal(size=(1000,)), HOST, itemsize=4)
        manager.move(stored, NVME)
        assert stored.array is None
        assert len(os.listdir(tmp_path)) == 1

    def test_spilled_data_unreadable_until_fetched(self, manager, rng):
        stored = manager.put("x", rng.normal(size=(1000,)), HOST)
        manager.move(stored, NVME)
        with pytest.raises(StorageError):
            stored.data()

    def test_fp32_roundtrip_exact(self, manager, rng):
        original = rng.normal(size=(1000,)).astype(np.float32)
        stored = manager.put("x", original, HOST, itemsize=4)
        manager.move(stored, NVME)
        manager.move(stored, HOST)
        np.testing.assert_array_equal(stored.data(), original)

    def test_fp16_roundtrip_quantizes(self, manager, rng):
        """fp16 tensors persist at fp16 width — faithful mixed precision."""
        original = rng.normal(size=(1000,)).astype(np.float32)
        stored = manager.put("x", original, HOST, itemsize=2)
        manager.move(stored, NVME)
        manager.move(stored, HOST)
        np.testing.assert_array_equal(
            stored.data(), original.astype(np.float16).astype(np.float32)
        )

    def test_fp16_restored_at_fp16_width(self, manager, rng):
        """Reload keeps the storage dtype: resident bytes match accounting."""
        stored = manager.put("x", rng.normal(size=(1000,)), HOST, itemsize=2)
        manager.move(stored, NVME)
        manager.move(stored, HOST)
        assert stored.data().dtype == np.float16
        assert stored.data().nbytes == stored.nbytes == 2000

    def test_spill_files_cleaned_on_drop(self, manager, rng, tmp_path):
        stored = manager.put("x", rng.normal(size=(1000,)), NVME)
        assert len(os.listdir(tmp_path)) == 1
        manager.drop(stored)
        assert len(os.listdir(tmp_path)) == 0

    def test_close_removes_owned_tempdir(self, rng):
        mgr = StorageManager(MB, MB, MB)
        mgr.put("x", rng.normal(size=(100,)), NVME)
        spill_dir = mgr.spill_dir
        assert os.path.isdir(spill_dir)
        mgr.close()
        assert not os.path.isdir(spill_dir)


class TestInvariants:
    @given(
        moves=st.lists(st.sampled_from([GPU, HOST, NVME]), min_size=1, max_size=12)
    )
    @settings(max_examples=25, deadline=None)
    def test_random_move_sequences_conserve_bytes(self, moves):
        """Usage sums stay equal to the tensor size; data survives."""
        rng = np.random.default_rng(0)
        manager = StorageManager(10 * MB, 10 * MB, 10 * MB)
        try:
            original = rng.normal(size=(500,)).astype(np.float32)
            stored = manager.put("x", original, GPU, itemsize=4)
            for dest in moves:
                manager.move(stored, dest)
                total = sum(tier.used_bytes for tier in manager.tiers.values())
                assert total == stored.nbytes
                assert manager.tiers[stored.tier].used_bytes == stored.nbytes
            if stored.tier == NVME:
                manager.move(stored, HOST)
            np.testing.assert_array_equal(stored.data(), original)
        finally:
            manager.close()

    def test_lookup_by_name(self, manager, rng):
        manager.put("weights", rng.normal(size=(10,)), HOST)
        assert manager.get("weights").name == "weights"
        with pytest.raises(StorageError):
            manager.get("missing")
