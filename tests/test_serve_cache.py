"""The concurrency-safe plan cache (repro.serve.cache).

The load-bearing properties: N racing threads never compute the same
key twice (single-flight), a bit-flipped entry is detected and
quarantined instead of served, writes are atomic, and a crashed
computer hands its flight to a waiter instead of stranding the key.
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.serve import PlanCache


@pytest.fixture
def cache(tmp_path):
    return PlanCache(str(tmp_path / "cache"))


PAYLOAD = {"feasible": True, "metrics": {"iteration_time": 12.5}}


class TestGetPut:
    def test_round_trip(self, cache):
        cache.put("abc123", PAYLOAD)
        assert cache.get("abc123") == PAYLOAD
        assert cache.hits == 1

    def test_miss_on_absent_key(self, cache):
        assert cache.get("nope") is None
        assert cache.misses == 1

    def test_put_overwrites_atomically(self, cache):
        cache.put("k", {"v": 1})
        cache.put("k", {"v": 2})
        assert cache.get("k") == {"v": 2}
        # No temp droppings left behind by the atomic replace.
        leftovers = [n for n in os.listdir(cache.root) if ".tmp." in n]
        assert leftovers == []

    def test_keys_are_sanitised_to_safe_filenames(self, cache):
        cache.put("../../etc/passwd", {"v": 1})
        names = os.listdir(cache.root)
        assert names == ["etcpasswd.json"]


class TestCorruption:
    def _flip_byte(self, cache, key):
        path = os.path.join(cache.root, f"{key}.json")
        with open(path, "r+b") as handle:
            offset = os.path.getsize(path) // 2
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0xFF]))

    def test_flipped_byte_is_a_miss_not_an_answer(self, cache):
        cache.put("deadbeef", PAYLOAD)
        self._flip_byte(cache, "deadbeef")
        assert cache.get("deadbeef") is None
        assert cache.corrupt == 1
        # Quarantined aside, so the next get is a clean miss.
        assert os.path.exists(os.path.join(cache.root, "deadbeef.json.corrupt"))
        assert cache.get("deadbeef") is None

    def test_checksum_mismatch_detected(self, cache):
        cache.put("k", PAYLOAD)
        path = os.path.join(cache.root, "k.json")
        envelope = json.load(open(path))
        envelope["payload"]["metrics"]["iteration_time"] = 1.0  # tampered
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        assert cache.get("k") is None
        assert cache.corrupt == 1

    def test_non_envelope_json_detected(self, cache):
        os.makedirs(cache.root, exist_ok=True)
        with open(os.path.join(cache.root, "k.json"), "w") as handle:
            handle.write('{"just": "json"}')
        assert cache.get("k") is None
        assert cache.corrupt == 1


class TestSingleFlight:
    def test_n_threads_compute_each_key_exactly_once(self, cache):
        n_threads, keys = 16, ("key-a", "key-b", "key-c")
        barrier = threading.Barrier(n_threads)
        computed = []
        lock = threading.Lock()
        results = []

        def compute_for(key):
            def compute():
                with lock:
                    computed.append(key)
                return {"key": key}

            return compute

        def worker(index):
            key = keys[index % len(keys)]
            barrier.wait()
            payload, how = cache.get_or_compute(
                key, compute_for(key), wait_timeout_s=10.0
            )
            with lock:
                results.append((key, payload["key"], how))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(results) == n_threads
        assert all(key == answered for key, answered, _ in results)
        assert sorted(computed) == sorted(keys), (
            f"single-flight violated: {computed}"
        )
        assert cache.computes == len(keys)

    def test_waiters_join_the_computers_result(self, cache):
        release = threading.Event()
        entered = threading.Event()

        def slow_compute():
            entered.set()
            release.wait(5.0)
            return dict(PAYLOAD)

        hows = []

        def leader():
            _, how = cache.get_or_compute("k", slow_compute)
            hows.append(how)

        thread = threading.Thread(target=leader)
        thread.start()
        assert entered.wait(5.0)

        def follower_compute():
            raise AssertionError("follower must never compute")

        follower = threading.Thread(
            target=lambda: hows.append(
                cache.get_or_compute("k", follower_compute, wait_timeout_s=5.0)[1]
            )
        )
        follower.start()
        release.set()
        thread.join()
        follower.join()
        assert sorted(hows) == ["computed", "joined"]

    def test_crashed_computer_hands_over_the_flight(self, cache):
        attempts = []

        def crash_then_succeed():
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("computer died")
            return dict(PAYLOAD)

        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", crash_then_succeed)
        payload, how = cache.get_or_compute("k", crash_then_succeed)
        assert payload == PAYLOAD
        assert how == "computed"
        assert len(attempts) == 2

    def test_wait_timeout_raises_instead_of_hanging(self, cache):
        release = threading.Event()
        entered = threading.Event()

        def wedged():
            entered.set()
            release.wait(10.0)
            return dict(PAYLOAD)

        thread = threading.Thread(
            target=lambda: cache.get_or_compute("k", wedged)
        )
        thread.start()
        assert entered.wait(5.0)
        with pytest.raises(TimeoutError):
            cache.get_or_compute("k", wedged, wait_timeout_s=0.05)
        release.set()
        thread.join()
