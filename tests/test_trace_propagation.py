"""End-to-end causal trace propagation across serve, sweep, fleet, adapt.

One trace_id born at a request boundary must be retrievable from every
record the request produced: the serve response (and its pool-worker
backend call), the sweep's process-pool worker envelopes, fleet events
and decisions, adapt decisions, and every ledger entry appended while
the trace was active.  The Hypothesis properties pin the two contracts
the issue names: a single trace_id (with an acyclic parent/child span
chain) through serve -> single-flight cache -> pool worker, and
bit-exact ``TraceContext`` serialisation through the JSONL ledger.
"""

from __future__ import annotations

import io
import math
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.core import RatelPolicy
from repro.hardware import evaluation_server
from repro.models import llm
from repro.obs import tracectx
from repro.obs.ledger import LedgerEntry, RunLedger, load_ledger
from repro.obs.tracectx import TraceContext
from repro.runner import Sweep, SweepPoint
from repro.runner.sweep import _pool_compute
from repro.serve import PlannerService, ServiceConfig, make_server, start_in_thread
from repro.session import Session

hex_trace = st.text("0123456789abcdef", min_size=32, max_size=32).filter(
    lambda s: set(s) != {"0"}
)
hex_span = st.text("0123456789abcdef", min_size=16, max_size=16).filter(
    lambda s: set(s) != {"0"}
)


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out)
    return code, out.getvalue()


def assert_acyclic_chain(leaf: TraceContext, spans: dict[str, TraceContext]) -> None:
    """Walk leaf -> root through parent_id; no cycles, one trace id."""
    seen: set[str] = set()
    current: TraceContext | None = leaf
    while current is not None:
        assert current.span_id not in seen, "span cycle"
        seen.add(current.span_id)
        assert current.trace_id == leaf.trace_id
        current = spans.get(current.parent_id)


# -- ledger stamping -----------------------------------------------------------


def entry(**overrides) -> LedgerEntry:
    fields = dict(
        label="evaluate:Ratel/13B/b8@test",
        policy="Ratel",
        model="13B",
        batch_size=8,
        server="test",
        feasible=True,
    )
    fields.update(overrides)
    return LedgerEntry(**fields)


class TestLedgerStamping:
    def test_ambient_trace_stamps_appended_entries(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs.jsonl"))
        ctx = tracectx.new_trace()
        with tracectx.activate(ctx):
            ledger.append(entry())
        ledger.append(entry())  # outside any trace
        first, second = ledger.entries()
        assert first.trace_id == ctx.trace_id
        assert second.trace_id == ""

    def test_explicit_trace_id_wins_over_ambient(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs.jsonl"))
        with tracectx.activate(tracectx.new_trace()):
            ledger.append(entry(trace_id="f" * 32))
        [held] = ledger.entries()
        assert held.trace_id == "f" * 32

    @given(trace_id=hex_trace, span_id=hex_span, parent_id=st.one_of(st.just(""), hex_span))
    @settings(max_examples=25, deadline=None)
    def test_context_round_trips_bit_exactly_through_jsonl(
        self, tmp_path_factory, trace_id, span_id, parent_id
    ):
        ctx = TraceContext(trace_id=trace_id, span_id=span_id, parent_id=parent_id)
        path = str(tmp_path_factory.mktemp("trace-ledger") / "runs.jsonl")
        RunLedger(path).append(
            entry(trace_id=ctx.trace_id, metrics={"trace": ctx.to_payload()})
        )
        [held] = load_ledger(path).entries()
        assert held.trace_id == ctx.trace_id
        assert TraceContext.from_payload(held.metrics["trace"]) == ctx


# -- sweep process pool --------------------------------------------------------


class TestSweepPoolPropagation:
    def _point(self, batch=8):
        return SweepPoint.evaluate(RatelPolicy(), llm("13B"), batch, evaluation_server())

    def test_worker_runs_under_a_child_span(self):
        submitted = tracectx.new_trace()
        envelope = _pool_compute(self._point(), submitted.to_payload())
        worker = TraceContext.from_payload(envelope["worker_trace"])
        assert worker.trace_id == submitted.trace_id
        assert worker.parent_id == submitted.span_id
        spans = {ctx.span_id: ctx for ctx in (submitted, worker)}
        assert_acyclic_chain(worker, spans)

    def test_untraced_submission_ships_no_trace(self):
        envelope = _pool_compute(self._point())
        assert "worker_trace" not in envelope

    def test_torn_trace_payload_does_not_fail_the_point(self):
        envelope = _pool_compute(self._point(), {"trace_id": "not-hex"})
        assert "worker_trace" not in envelope
        assert envelope["value"] is not None

    def test_process_sweep_attributes_ledger_and_metrics(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        sweep = Sweep(executor="process", max_workers=2)
        with Session(ledger=path, sweep=sweep, trace=True) as session:
            trace_id = session.trace.trace_id
            points = [self._point(batch) for batch in (8, 16)]
            outcomes = sweep.run(points)
        assert all(o.feasible for o in outcomes)
        entries = load_ledger(path).entries()
        assert len(entries) == 2
        assert {e.trace_id for e in entries} == {trace_id}
        # Worker snapshots shipped home under the same trace.
        assert sweep.metrics().trace_id == trace_id


# -- serve: request -> single-flight cache -> pool worker ----------------------


def ok_backend(query, cancel):
    return {
        "feasible": True,
        "metrics": {"iteration_time": 2.0, "tokens_per_s": 1000.0 / query.batch_size},
    }


@pytest.fixture(scope="module")
def serve_rig(tmp_path_factory):
    """A planner service whose backend records the ambient trace context."""
    root = tmp_path_factory.mktemp("serve-trace")
    observed: list[TraceContext | None] = []

    def recording_backend(query, cancel):
        observed.append(tracectx.current())
        return ok_backend(query, cancel)

    service = PlannerService(
        ServiceConfig(
            rate=10_000.0,
            burst=5_000.0,
            retry_attempts=1,
            cache_dir=str(root / "cache"),
            journal_path=str(root / "journal.jsonl"),
        ),
        backend=recording_backend,
        sleep=lambda _: None,
    )
    yield service, observed
    service.close()


class TestServePropagation:
    def test_direct_request_roots_a_retrievable_trace(self, serve_rig):
        service, _ = serve_rig
        response = service.handle({"model": "6B", "batch_size": 4})
        assert response.status == 200
        assert len(response.trace_id) == 32
        assert response.to_payload()["trace_id"] == response.trace_id

    def test_backend_runs_under_a_child_of_the_request(self, serve_rig):
        service, observed = serve_rig
        root = tracectx.new_trace()
        observed.clear()
        with tracectx.activate(root):
            response = service.handle({"model": "13B", "batch_size": 3})
        assert response.status == 200
        assert response.trace_id == root.trace_id
        [backend_ctx] = observed
        assert backend_ctx is not None
        assert backend_ctx.trace_id == root.trace_id
        assert backend_ctx.parent_id == root.span_id

    def test_cache_hit_carries_the_second_requests_trace(self, serve_rig):
        service, observed = serve_rig
        payload = {"model": "6B", "batch_size": 7}
        first = tracectx.new_trace()
        with tracectx.activate(first):
            assert service.handle(payload).trace_id == first.trace_id
        observed.clear()
        second = tracectx.new_trace()
        with tracectx.activate(second):
            response = service.handle(payload)
        # Served from the cache index: no backend call, and the answer is
        # attributed to the request that asked, not the one that filled it.
        assert observed == []
        assert response.rung == "exact"
        assert response.trace_id == second.trace_id

    @given(trace_id=hex_trace, span_id=hex_span, batch=st.integers(min_value=1, max_value=48))
    @settings(max_examples=20, deadline=None)
    def test_one_trace_id_and_acyclic_spans_per_request(
        self, serve_rig, trace_id, span_id, batch
    ):
        service, observed = serve_rig
        root = TraceContext(trace_id=trace_id, span_id=span_id)
        observed.clear()
        with tracectx.activate(root):
            response = service.handle({"model": "30B", "batch_size": batch})
        assert response.status == 200
        assert response.trace_id == root.trace_id
        spans = {root.span_id: root}
        for ctx in observed:  # empty on a single-flight cache hit
            assert ctx is not None
            spans[ctx.span_id] = ctx
            assert_acyclic_chain(ctx, spans)


class TestHTTPTraceparent:
    @pytest.fixture()
    def server(self, serve_rig):
        server = make_server(serve_rig[0], port=0)
        start_in_thread(server)
        yield server
        server.shutdown()

    def _post(self, server, payload, headers=None):
        import json as _json
        import urllib.request

        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/whatif",
            data=_json.dumps(payload).encode(),
            headers=dict({"Content-Type": "application/json"}, **(headers or {})),
        )
        with urllib.request.urlopen(request) as response:
            return _json.loads(response.read()), response.headers

    def test_traceparent_joined_and_echoed(self, server):
        root = tracectx.new_trace()
        body, headers = self._post(
            server,
            {"model": "6B", "batch_size": 11},
            {"traceparent": root.to_traceparent()},
        )
        assert body["trace_id"] == root.trace_id
        echoed = TraceContext.from_traceparent(headers["traceparent"])
        assert echoed is not None
        assert echoed.trace_id == root.trace_id
        assert echoed.span_id != root.span_id  # the server's own hop

    def test_malformed_traceparent_starts_a_fresh_trace(self, server):
        body, headers = self._post(
            server,
            {"model": "6B", "batch_size": 12},
            {"traceparent": "00-zzz-bad-01"},
        )
        assert len(body["trace_id"]) == 32
        echoed = TraceContext.from_traceparent(headers["traceparent"])
        assert echoed is not None and echoed.trace_id == body["trace_id"]


# -- fleet and adapt -----------------------------------------------------------


class StubOracle:
    def feasible(self, spec, node):
        return True

    def iteration_time(self, spec, node):
        return 2.0

    def service_time(self, spec, node, iterations):
        return iterations * self.iteration_time(spec, node)

    def needs(self, spec, node):
        return None


class TestFleetStamping:
    def _fleet(self, tmp_path):
        from repro.fleet import Fleet, Node

        nodes = [
            Node(f"n{i}", evaluation_server(n_ssds=2), RatelPolicy())
            for i in range(2)
        ]
        return Fleet(
            nodes, "fifo", oracle=StubOracle(), ledger=str(tmp_path / "fleet.jsonl")
        )

    def test_submit_stamps_spec_events_and_ledger(self, tmp_path):
        from repro.fleet import JobSpec

        fleet = self._fleet(tmp_path)
        ctx = tracectx.new_trace()
        with tracectx.activate(ctx):
            fleet.submit(JobSpec("traced", model="6B", batch_size=8, iterations=2))
        fleet.submit(JobSpec("plain", model="6B", batch_size=8, iterations=2))
        outcome = fleet.drain()
        assert outcome.metrics["completed"] == 2
        by_job = {}
        for event in outcome.events:
            if event.job_id:
                by_job.setdefault(event.job_id, set()).add(event.trace_id)
        assert by_job["traced"] == {ctx.trace_id}
        assert by_job["plain"] == {""}
        entries = load_ledger(str(tmp_path / "fleet.jsonl")).entries()
        traced = [e for e in entries if "traced" in e.label]
        assert traced and all(e.trace_id == ctx.trace_id for e in traced)

    def test_node_records_last_trace_on_degrade(self):
        from repro.fleet import Node

        node = Node("n0", evaluation_server(n_ssds=2), RatelPolicy())
        ctx = tracectx.new_trace()
        with tracectx.activate(ctx):
            node.degrade(failed_ssds=1)
        assert node.last_trace_id == ctx.trace_id
        node.restore()
        assert node.last_trace_id == ""


class TestAdaptStamping:
    def test_drill_decisions_stamped_under_session_trace(self, tmp_path):
        from repro.adapt import drill_outcome

        path = str(tmp_path / "adapt.jsonl")
        with Session(trace=True) as session:
            trace_id = session.trace.trace_id
            outcome = drill_outcome(ledger=RunLedger(path))
        assert outcome.metrics["plan_swaps"] > 0
        decisions = [e for e in load_ledger(path).entries() if e.kind == "adapt"]
        assert decisions
        assert {e.trace_id for e in decisions} == {trace_id}
        for held in decisions:
            assert held.metrics["decision"]["trace_id"] == trace_id


# -- the acceptance path: one id from request to report ------------------------


class TestTraceReportRoundTrip:
    def test_serve_request_retrievable_via_obs_report(self, tmp_path):
        ledger_path = str(tmp_path / "serve-ledger.jsonl")
        service = PlannerService(
            ServiceConfig(
                rate=100.0,
                burst=50.0,
                retry_attempts=1,
                cache_dir=str(tmp_path / "cache"),
                journal_path=str(tmp_path / "journal.jsonl"),
                ledger_path=ledger_path,
            ),
            backend=ok_backend,
            sleep=lambda _: None,
        )
        try:
            response = service.handle({"model": "13B", "batch_size": 8})
        finally:
            service.close()
        assert response.status == 200 and response.trace_id
        code, text = run_cli(
            "obs", "report", "--trace-id", response.trace_id, "--ledger", ledger_path
        )
        assert code == 0
        assert response.trace_id in text
        assert "ledger record" in text

    def test_traced_sweep_retrievable_via_obs_report(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        sweep = Sweep(executor="process", max_workers=2)
        with Session(ledger=path, sweep=sweep, trace=True) as session:
            sweep.run(
                [
                    SweepPoint.evaluate(
                        RatelPolicy(), llm("13B"), batch, evaluation_server()
                    )
                    for batch in (8, 16)
                ]
            )
            trace_id = session.trace.trace_id
        code, text = run_cli("obs", "report", "--trace-id", trace_id, "--ledger", path)
        assert code == 0
        assert "2 ledger record" in text

    def test_unknown_trace_id_reports_no_matches(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        RunLedger(path).append(entry())
        code, text = run_cli("obs", "report", "--trace-id", "e" * 32, "--ledger", path)
        assert code == 1
        assert "no entries with trace_id" in text


def test_fleet_math_guard():
    # Guard against NaN service times leaking from the stub oracle shape.
    assert math.isfinite(StubOracle().service_time(None, None, 3))
