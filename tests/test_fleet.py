"""Tests for ``repro.fleet``: API types, schedulers, the event loop.

Unit tests drive :class:`Fleet` through a stub cost oracle (constant
per-(model, node) iteration times) so scheduler behavior is tested
without the simulation stack; the integration tests at the bottom run
the real :class:`~repro.fleet.oracle.CostOracle` end to end, including
the drift-to-rescheduling escalation and its run-ledger audit trail.

The hypothesis properties pin the ISSUE's three invariants:

* **conservation** — every submitted job terminates exactly once
  (completed or rejected), under any trace and any scheduler;
* **bounded wait** — under the aged-priority scheduler, a job queued
  longer than ``(p_max - p_min) / aging_rate`` outranks any fresh
  arrival, so it can never start after one submitted that much later;
* **identity round-trip** — ``JobSpec`` survives preempt/requeue and
  payload serialisation bit-exactly.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import RatelPolicy
from repro.fleet import (
    CostOracle,
    Fleet,
    FleetError,
    FleetEvent,
    JobSpec,
    Node,
    PriorityScheduler,
    SCHEDULERS,
    bursty_trace,
    make_scheduler,
    percentile,
    run_bursty_drill,
    standard_degradations,
    standard_fleet_nodes,
)
from repro.fleet.schedulers import FifoScheduler
from repro.hardware import evaluation_server
from repro.obs.ledger import load_ledger


class StubOracle:
    """Constant-time costs so tests steer schedulers deterministically."""

    def __init__(self, speeds=None, degrade_factor=3.0):
        self.speeds = speeds or {}
        self.degrade_factor = degrade_factor

    def feasible(self, spec, node):
        if spec.hardware_class is not None:
            return spec.hardware_class == node.hardware_class
        return True

    def iteration_time(self, spec, node):
        if not self.feasible(spec, node):
            return math.nan
        base = {"30B": 30.0, "13B": 8.0, "6B": 2.0}.get(spec.model, 5.0)
        speed = self.speeds.get(node.name, 1.0)
        sag = self.degrade_factor if (node.failed_ssds or node.bw_sag < 1.0) else 1.0
        return base * speed * sag

    def service_time(self, spec, node, iterations):
        return iterations * self.iteration_time(spec, node)

    def needs(self, spec, node):
        return None


def stub_nodes(n=2, hardware_class=None):
    """``n`` identical nodes named n0..n{n-1} (cheap specs, never simulated)."""
    server = evaluation_server(n_ssds=2)
    return [
        Node(f"n{i}", server, RatelPolicy(), hardware_class=hardware_class)
        for i in range(n)
    ]


def job(job_id, model="6B", **kwargs):
    batch = {"30B": 32, "13B": 16, "6B": 8}[model]
    kwargs.setdefault("iterations", 5)
    return JobSpec(job_id, model=model, batch_size=batch, **kwargs)


class TestApiTypes:
    def test_job_spec_validation(self):
        with pytest.raises(FleetError):
            JobSpec("", model="6B", batch_size=8, iterations=5)
        with pytest.raises(FleetError):
            job("a", iterations=0)
        with pytest.raises(FleetError):
            job("a", deadline_s=0.0)
        with pytest.raises(FleetError):
            job("a", submit_at=-1.0)

    def test_event_kind_validation(self):
        with pytest.raises(FleetError):
            FleetEvent(0.0, "explode")
        event = FleetEvent(12.0, "requeue", job_id="j", node="n0", detail="why")
        assert "requeue j @n0: why" in str(event)

    def test_percentile_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 0.5) == 50.0
        assert percentile([7.0], 0.99) == 7.0
        assert math.isnan(percentile([], 0.99))
        with pytest.raises(FleetError):
            percentile(values, 1.5)

    def test_unknown_scheduler_lists_choices(self):
        with pytest.raises(FleetError, match="binpack"):
            make_scheduler("bogus")
        for name in SCHEDULERS:
            assert make_scheduler(name).name == name

    def test_scheduler_instance_passes_through(self):
        sched = PriorityScheduler(aging_rate=0.5)
        assert make_scheduler(sched) is sched


class TestFleetLoop:
    def test_duplicate_job_id_rejected(self):
        fleet = Fleet(stub_nodes(), "fifo", oracle=StubOracle())
        fleet.submit(job("a"))
        with pytest.raises(FleetError, match="duplicate"):
            fleet.submit(job("a"))

    def test_infeasible_everywhere_is_rejected_at_arrival(self):
        fleet = Fleet(stub_nodes(), "fifo", oracle=StubOracle())
        fleet.submit(job("pinned", hardware_class="tpu"))
        outcome = fleet.drain()
        [result] = outcome.results
        assert result.state == "rejected"
        assert outcome.metrics["rejected"] == 1
        assert any(e.kind == "reject" for e in outcome.events)

    def test_fifo_runs_everything_in_arrival_order(self):
        fleet = Fleet(stub_nodes(1), "fifo", oracle=StubOracle())
        for i in range(3):
            fleet.submit(job(f"j{i}", submit_at=float(i)))
        outcome = fleet.drain()
        starts = [e for e in outcome.events if e.kind == "start"]
        assert [e.job_id for e in starts] == ["j0", "j1", "j2"]
        assert outcome.metrics["completed"] == 3
        assert len(outcome.completed) == 3

    def test_sjf_dispatches_short_job_first(self):
        fleet = Fleet(stub_nodes(1), "sjf", oracle=StubOracle())
        # Both queued while the head job occupies the single node.
        fleet.submit(job("head", model="6B", submit_at=0.0, iterations=5))
        fleet.submit(job("long", model="30B", submit_at=1.0))
        fleet.submit(job("short", model="6B", submit_at=2.0))
        outcome = fleet.drain()
        starts = [e.job_id for e in outcome.events if e.kind == "start"]
        assert starts.index("short") < starts.index("long")

    def test_priority_preempts_and_requeues_victim(self):
        fleet = Fleet(
            stub_nodes(1),
            PriorityScheduler(aging_rate=0.0, preempt_margin=1.0),
            oracle=StubOracle(),
        )
        fleet.submit(job("lowly", model="30B", priority=0, submit_at=0.0))
        fleet.submit(job("urgent", model="6B", priority=5, submit_at=10.0))
        outcome = fleet.drain()
        kinds = [(e.kind, e.job_id) for e in outcome.events]
        assert ("preempt", "lowly") in kinds
        # The victim re-enters the queue and restarts after the intruder.
        lowly_starts = [e.time for e in outcome.events
                        if e.kind == "start" and e.job_id == "lowly"]
        assert len(lowly_starts) == 2
        assert outcome.metrics["completed"] == 2
        lowly = next(r for r in outcome.results if r.spec.job_id == "lowly")
        assert lowly.preemptions >= 1
        urgent = next(r for r in outcome.results if r.spec.job_id == "urgent")
        assert urgent.started_at == 10.0

    def test_degradation_requeues_running_job_to_healthy_node(self):
        oracle = StubOracle(speeds={"n0": 1.0, "n1": 1.1})
        fleet = Fleet(stub_nodes(2), "sjf", oracle=oracle, migrate_threshold=1.3)
        fleet.submit(job("victim", model="30B", submit_at=0.0, iterations=10))
        fleet.inject(50.0, "n0", failed_ssds=1, bw_sag=0.5)
        outcome = fleet.drain()
        kinds = {e.kind for e in outcome.events}
        assert {"degrade", "requeue", "migrate"} <= kinds
        victim = outcome.results[0]
        assert victim.completed and victim.node == "n1"
        assert victim.nodes_visited == ("n0", "n1")
        assert outcome.metrics["migrations"] == 1

    def test_mild_degradation_reprices_in_place(self):
        # 1.2x slowdown stays under the 1.3x migrate threshold.
        oracle = StubOracle(speeds={"n0": 1.0, "n1": 1.0}, degrade_factor=1.2)
        fleet = Fleet(stub_nodes(2), "sjf", oracle=oracle, migrate_threshold=1.3)
        fleet.submit(job("steady", model="30B", submit_at=0.0, iterations=10))
        fleet.inject(50.0, "n0", bw_sag=0.9)
        outcome = fleet.drain()
        assert not any(e.kind in ("requeue", "migrate") for e in outcome.events)
        [result] = outcome.results
        assert result.completed and result.node == "n0"
        # 1 full iteration done healthy (30 s each); 9 remain at 36 s.
        assert result.finished_at == pytest.approx(50.0 + 9 * 36.0)

    def test_restore_heals_the_node(self):
        fleet = Fleet(stub_nodes(1), "fifo", oracle=StubOracle())
        fleet.inject(10.0, "n0", failed_ssds=1, bw_sag=0.5)
        fleet.inject(20.0, "n0", restore=True)
        fleet.submit(job("late", submit_at=30.0))
        outcome = fleet.drain()
        assert fleet.nodes[0].failed_ssds == 0 and fleet.nodes[0].bw_sag == 1.0
        [result] = outcome.results
        assert result.completed
        assert result.iteration_time == pytest.approx(2.0)  # healthy 6B time

    def test_run_until_advances_partially(self):
        fleet = Fleet(stub_nodes(1), "fifo", oracle=StubOracle())
        fleet.submit(job("a", submit_at=0.0, iterations=5))      # 10 s of work
        fleet.submit(job("b", submit_at=100.0, iterations=5))
        fleet.run_until(50.0)
        assert fleet.result("a").completed
        assert fleet.result("b") is None
        outcome = fleet.drain()
        assert outcome.metrics["completed"] == 2

    def test_deadline_accounting(self):
        fleet = Fleet(stub_nodes(1), "fifo", oracle=StubOracle())
        fleet.submit(job("ok", deadline_s=100.0, iterations=5))          # 10 s
        fleet.submit(job("late", deadline_s=5.0, iterations=10, submit_at=1.0))
        outcome = fleet.drain()
        assert outcome.metrics["deadlines_total"] == 2
        assert outcome.metrics["deadlines_met"] == 1

    def test_outcome_payload_is_json_serialisable(self):
        fleet = Fleet(stub_nodes(), "fifo", oracle=StubOracle())
        fleet.submit(job("a"))
        payload = fleet.drain().to_payload()
        parsed = json.loads(json.dumps(payload))
        assert parsed["scheduler"] == "fifo"
        assert parsed["metrics"]["completed"] == 1


# -- hypothesis properties -----------------------------------------------------


def spec_strategy(with_pins=True):
    models = st.sampled_from(["30B", "13B", "6B"])
    pins = (
        st.sampled_from([None, None, "good", "nope"])
        if with_pins
        else st.just(None)
    )
    return st.builds(
        lambda i, model, iters, prio, submit, pin: JobSpec(
            f"job-{i:03d}",
            model=model,
            batch_size={"30B": 32, "13B": 16, "6B": 8}[model],
            iterations=iters,
            priority=prio,
            submit_at=submit,
            hardware_class=pin,
        ),
        st.integers(0, 10**6),
        models,
        st.integers(1, 20),
        st.integers(0, 5),
        st.floats(0.0, 3000.0, allow_nan=False),
        pins,
    )


def trace_strategy(with_pins=True, max_size=18):
    return st.lists(
        spec_strategy(with_pins),
        min_size=1,
        max_size=max_size,
        unique_by=lambda spec: spec.job_id,
    )


class PoisonScheduler(FifoScheduler):
    """FIFO that raises on jobs whose id starts with ``bad`` at one hook."""

    name = "poison"

    def __init__(self, where="order"):
        self.where = where

    def _maybe_boom(self, hook, jobs):
        if self.where == hook and any(
            state.spec.job_id.startswith("bad") for state in jobs
        ):
            raise RuntimeError("poisoned job")

    def order(self, queue, now, nodes, oracle):
        self._maybe_boom("order", queue)
        return super().order(queue, now, nodes, oracle)

    def place(self, job, free_nodes, now, oracle):
        self._maybe_boom("place", [job])
        return super().place(job, free_nodes, now, oracle)


class TestSchedulerContainment:
    """A raising scheduler callback quarantines the job, not the loop."""

    def _drain(self, scheduler, n_nodes=1):
        fleet = Fleet(stub_nodes(n_nodes), scheduler, oracle=StubOracle())
        fleet.submit(job("ok-1", submit_at=0.0))
        fleet.submit(job("bad", submit_at=1.0))
        fleet.submit(job("ok-2", submit_at=2.0))
        return fleet.drain()

    def _assert_contained(self, outcome):
        by_id = {result.spec.job_id: result for result in outcome.results}
        assert by_id["ok-1"].completed and by_id["ok-2"].completed
        assert by_id["bad"].state == "rejected"
        assert "scheduler error" in by_id["bad"].reason
        errors = [e for e in outcome.events if e.kind == "scheduler_error"]
        assert errors and errors[0].job_id == "bad"

    def test_order_exception_quarantines_offender(self):
        self._assert_contained(self._drain(PoisonScheduler("order")))

    def test_place_exception_quarantines_offender(self):
        self._assert_contained(self._drain(PoisonScheduler("place")))

    def test_preempt_victim_exception_quarantines_offender(self):
        class PoisonPreempt(FifoScheduler):
            name = "poison-preempt"
            preemptive = True

            def preempt_victim(self, job, busy_nodes, now, oracle):
                if job.spec.job_id.startswith("bad"):
                    raise RuntimeError("poisoned job")
                return None

        self._assert_contained(self._drain(PoisonPreempt()))

    def test_combination_failure_falls_back_to_arrival_order(self):
        class ComboPoison(FifoScheduler):
            name = "combo-poison"

            def order(self, queue, now, nodes, oracle):
                if len(queue) >= 2:
                    raise RuntimeError("needs the pair to blow up")
                return super().order(queue, now, nodes, oracle)

        fleet = Fleet(stub_nodes(1), ComboPoison(), oracle=StubOracle())
        # "a" occupies the node while "b" and "c" pile up in the queue,
        # so order() eventually sees the raising pair.
        fleet.submit(job("a", submit_at=0.0))
        fleet.submit(job("b", submit_at=1.0))
        fleet.submit(job("c", submit_at=2.0))
        outcome = fleet.drain()
        # No single offender: nothing is quarantined, everything still runs.
        assert outcome.metrics["completed"] == 3
        errors = [e for e in outcome.events if e.kind == "scheduler_error"]
        assert errors and "no single offender" in errors[0].detail


class TestConservationProperty:
    @settings(max_examples=40, deadline=None)
    @given(trace=trace_strategy(), scheduler=st.sampled_from(sorted(SCHEDULERS)))
    def test_no_job_lost_or_duplicated(self, trace, scheduler):
        nodes = stub_nodes(2, hardware_class="good")
        fleet = Fleet(nodes, scheduler, oracle=StubOracle())
        for spec in trace:
            fleet.submit(spec)
        outcome = fleet.drain()
        assert outcome.metrics["completed"] + outcome.metrics["rejected"] == len(trace)
        terminal_ids = [r.spec.job_id for r in outcome.results]
        assert sorted(terminal_ids) == sorted(spec.job_id for spec in trace)
        assert len(set(terminal_ids)) == len(trace)
        for result in outcome.results:
            if result.spec.hardware_class == "nope":
                assert result.state == "rejected"
            else:
                assert result.completed


class TestBoundedWaitProperty:
    """Aged priority bounds starvation: bound = (p_max - p_min) / aging_rate.

    With priorities in [0, 5] and ``aging_rate=0.01`` the bound is 500 s:
    once a job has queued 500 s its effective priority strictly exceeds
    any fresh arrival's, so — feasibility being uniform — no job can
    start before one submitted more than 500 s earlier.
    """

    AGING = 0.01
    BOUND = (5 - 0) / AGING

    @settings(max_examples=40, deadline=None)
    @given(trace=trace_strategy(with_pins=False))
    def test_no_start_inversion_past_the_bound(self, trace):
        fleet = Fleet(
            stub_nodes(2),
            PriorityScheduler(aging_rate=self.AGING),
            oracle=StubOracle(),
        )
        for spec in trace:
            fleet.submit(spec)
        outcome = fleet.drain()
        started = {
            r.spec.job_id: (r.submitted_at, r.started_at)
            for r in outcome.results
            if r.started_at is not None
        }
        for id_a, (submit_a, start_a) in started.items():
            for id_b, (submit_b, start_b) in started.items():
                if submit_a + self.BOUND < submit_b:
                    assert start_a <= start_b, (
                        f"{id_a} (t={submit_a:.0f}) started after {id_b} "
                        f"(t={submit_b:.0f}) despite waiting past the "
                        f"{self.BOUND:.0f} s starvation bound"
                    )


class TestSpecRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(spec=spec_strategy())
    def test_payload_round_trip_is_bit_exact(self, spec):
        assert JobSpec.from_payload(spec.to_payload()) == spec
        over_json = json.loads(json.dumps(spec.to_payload()))
        assert JobSpec.from_payload(over_json) == spec

    @settings(max_examples=25, deadline=None)
    @given(trace=trace_strategy(with_pins=False, max_size=8))
    def test_preempt_requeue_preserves_spec_identity(self, trace):
        originals = {spec.job_id: spec.to_payload() for spec in trace}
        fleet = Fleet(
            stub_nodes(1),
            PriorityScheduler(aging_rate=0.0, preempt_margin=1.0),
            oracle=StubOracle(),
        )
        for spec in trace:
            fleet.submit(spec)
        outcome = fleet.drain()
        for result in outcome.results:
            assert result.spec.to_payload() == originals[result.spec.job_id]
            assert JobSpec.from_payload(result.spec.to_payload()) == result.spec


# -- integration: the real cost oracle ----------------------------------------


class TestRealOracleIntegration:
    def test_degradation_escalates_to_ledgered_migration(self, tmp_path):
        path = str(tmp_path / "fleet.jsonl")
        fleet = Fleet(standard_fleet_nodes(), "sjf", ledger=path)
        fleet.submit(JobSpec("long", model="30B", batch_size=32, iterations=12))
        fleet.submit(
            JobSpec("med", model="13B", batch_size=16, iterations=8, submit_at=5.0)
        )
        fleet.inject(30.0, "box-4090", failed_ssds=10, bw_sag=0.6)
        outcome = fleet.drain()
        assert outcome.metrics["completed"] == 2
        assert outcome.metrics["requeues"] >= 1
        assert outcome.metrics["migrations"] >= 1

        entries = load_ledger(path).entries()
        assert all(entry.kind == "fleet" for entry in entries)
        decisions = [entry.metrics["decision"] for entry in entries]
        requeues = [d for d in decisions if d["decision"] == "requeue"]
        assert requeues and "threshold" in requeues[0]["reason"]
        migrated = next(d for d in decisions if d["decision"] == "migrate")
        assert JobSpec.from_payload(migrated["job"]).job_id == "med"

    def test_oracle_prefers_predicted_iteration_time(self):
        oracle = CostOracle()
        node = standard_fleet_nodes()[2]  # box-4090, Ratel
        spec = JobSpec("probe", model="13B", batch_size=16, iterations=4)
        outcome = oracle.outcome(spec, node)
        assert outcome.feasible
        t = oracle.iteration_time(spec, node)
        assert t == pytest.approx(outcome.predicted_iteration_time)
        assert oracle.service_time(spec, node, 4) == pytest.approx(4 * t)

    def test_bursty_drill_smoke(self):
        outcome = run_bursty_drill("fifo", n_jobs=6, degrade=False)
        assert outcome.metrics["completed"] + outcome.metrics["rejected"] == 6
        assert len(bursty_trace(6)) == 6
        assert bursty_trace(6) == bursty_trace(6)  # deterministic
        assert standard_degradations()[0]["node"] == "box-4090"
