"""Tests for the discrete-event simulation kernel and resources."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.hardware import EVALUATION_SERVER, GB
from repro.sim import (
    ExclusiveResource,
    Machine,
    RateChannel,
    SimulationError,
    Simulator,
    Trace,
)
from repro.sim.resources import Semaphore


class TestKernel:
    def test_timeout_advances_clock(self):
        sim = Simulator()

        def job():
            yield sim.timeout(2.5)
            return "done"

        proc = sim.process(job())
        sim.run()
        assert sim.now == pytest.approx(2.5)
        assert proc.value == "done"

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_processes_wait_on_each_other(self):
        sim = Simulator()

        def child():
            yield sim.timeout(1.0)
            return 41

        def parent():
            value = yield sim.process(child())
            return value + 1

        proc = sim.process(parent())
        sim.run()
        assert proc.value == 42

    def test_all_of_waits_for_slowest(self):
        sim = Simulator()

        def job(delay, value):
            yield sim.timeout(delay)
            return value

        def barrier():
            values = yield sim.all_of([sim.process(job(1, "a")), sim.process(job(3, "b"))])
            return values

        proc = sim.process(barrier())
        sim.run()
        assert sim.now == pytest.approx(3.0)
        assert proc.value == ["a", "b"]

    def test_any_of_returns_first(self):
        sim = Simulator()

        def job(delay, value):
            yield sim.timeout(delay)
            return value

        def race():
            value = yield sim.any_of([sim.process(job(5, "slow")), sim.process(job(1, "fast"))])
            return value

        proc = sim.process(race())
        sim.run(until=2.0)
        assert proc.value == "fast"

    def test_event_double_trigger_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_yielding_non_event_rejected(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_empty_all_of_triggers_immediately(self):
        sim = Simulator()

        def job():
            yield sim.all_of([])
            return "ok"

        proc = sim.process(job())
        sim.run()
        assert proc.value == "ok"
        assert sim.now == 0.0

    def test_determinism(self):
        def build():
            sim = Simulator()
            log = []

            def worker(name, delay):
                yield sim.timeout(delay)
                log.append((sim.now, name))

            for i in range(10):
                sim.process(worker(f"w{i}", (i * 7) % 3))
            sim.run()
            return log

        assert build() == build()


class TestExclusiveResource:
    def test_fifo_ordering(self):
        sim = Simulator()
        resource = ExclusiveResource(sim, "mutex")
        order = []

        def worker(name, hold):
            grant = resource.request()
            yield grant
            order.append(name)
            yield sim.timeout(hold)
            resource.release()

        for i in range(4):
            sim.process(worker(f"w{i}", 1.0))
        sim.run()
        assert order == ["w0", "w1", "w2", "w3"]
        assert sim.now == pytest.approx(4.0)

    def test_release_when_idle_raises(self):
        sim = Simulator()
        resource = ExclusiveResource(sim, "mutex")
        with pytest.raises(RuntimeError):
            resource.release()


class TestSemaphore:
    def test_bounds_concurrency(self):
        sim = Simulator()
        sem = Semaphore(sim, 2)
        active = []
        peak = []

        def worker():
            yield sem.acquire()
            active.append(1)
            peak.append(len(active))
            yield sim.timeout(1.0)
            active.pop()
            sem.release()

        for _ in range(6):
            sim.process(worker())
        sim.run()
        assert max(peak) == 2
        assert sim.now == pytest.approx(3.0)

    def test_rejects_zero_permits(self):
        with pytest.raises(ValueError):
            Semaphore(Simulator(), 0)


class TestRateChannel:
    def test_service_time(self):
        sim = Simulator()
        channel = RateChannel(sim, "link", 10 * GB, Trace())
        assert channel.service_time(20 * GB) == pytest.approx(2.0)

    def test_efficiency_slows_transfer(self):
        sim = Simulator()
        channel = RateChannel(sim, "link", 10 * GB, Trace())
        assert channel.service_time(10 * GB, efficiency=0.5) == pytest.approx(2.0)

    def test_efficiency_out_of_range_rejected(self):
        channel = RateChannel(Simulator(), "link", 1.0, Trace())
        with pytest.raises(ValueError):
            channel.service_time(1.0, efficiency=0.0)
        with pytest.raises(ValueError):
            channel.service_time(1.0, efficiency=1.5)

    def test_negative_amount_rejected(self):
        channel = RateChannel(Simulator(), "link", 1.0, Trace())
        with pytest.raises(ValueError):
            channel.service_time(-1.0)

    def test_serializes_transfers(self):
        sim = Simulator()
        trace = Trace()
        channel = RateChannel(sim, "link", 1 * GB, trace)

        def sender(nbytes):
            yield from channel.use(nbytes, "x")

        sim.process(sender(1 * GB))
        sim.process(sender(2 * GB))
        sim.run()
        assert sim.now == pytest.approx(3.0)
        assert channel.total_amount == pytest.approx(3 * GB)
        assert channel.busy_time == pytest.approx(3.0)

    @given(st.lists(st.floats(min_value=0, max_value=5 * GB), min_size=1, max_size=8))
    def test_total_time_is_sum_of_services(self, sizes):
        sim = Simulator()
        channel = RateChannel(sim, "link", 1 * GB, Trace())

        def sender(nbytes):
            yield from channel.use(nbytes)

        for nbytes in sizes:
            sim.process(sender(nbytes))
        sim.run()
        assert sim.now == pytest.approx(sum(sizes) / GB)


class TestMachine:
    def test_channels_built_from_spec(self):
        machine = Machine(EVALUATION_SERVER)
        assert len(machine.gpus) == 1
        assert machine.gpus[0].rate == EVALUATION_SERVER.gpu.peak_fp16_flops
        assert machine.pcie_m2g[0].rate == pytest.approx(21 * GB)
        assert machine.ssd.read_bw == pytest.approx(32 * GB)

    def test_ssd_simplex_serializes_read_and_write(self):
        machine = Machine(EVALUATION_SERVER)

        def reader():
            yield from machine.ssd.read(32 * GB)

        def writer():
            yield from machine.ssd.write(32 * GB)

        machine.sim.process(reader())
        machine.sim.process(writer())
        machine.run()
        assert machine.now == pytest.approx(2.0)
        assert machine.ssd.total_read == pytest.approx(32 * GB)
        assert machine.ssd.total_written == pytest.approx(32 * GB)

    def test_duplex_pcie_directions_run_concurrently(self):
        machine = Machine(EVALUATION_SERVER)

        def down():
            yield from machine.pcie_m2g[0].use(21 * GB)

        def up():
            yield from machine.pcie_g2m[0].use(21 * GB)

        machine.sim.process(down())
        machine.sim.process(up())
        machine.run()
        assert machine.now == pytest.approx(1.0)

    def test_rejects_non_server(self):
        with pytest.raises(TypeError):
            Machine("not a server")

    def test_ssd_on_empty_array_rejected(self):
        machine = Machine(EVALUATION_SERVER.with_ssds(0))

        def reader():
            yield from machine.ssd.read(1.0)

        machine.sim.process(reader())
        with pytest.raises(RuntimeError):
            machine.run()


class TestTrace:
    def test_busy_time_clips_to_window(self):
        trace = Trace()
        trace.record("gpu", "k", 1.0, 5.0, 100.0)
        assert trace.busy_time("gpu") == pytest.approx(4.0)
        assert trace.busy_time("gpu", 2.0, 3.0) == pytest.approx(1.0)
        assert trace.busy_time("gpu", 6.0, 9.0) == 0.0

    def test_utilization(self):
        trace = Trace()
        trace.record("ssd", "x", 0.0, 2.0, 10.0)
        assert trace.utilization("ssd", 0.0, 4.0) == pytest.approx(0.5)
        assert trace.utilization("ssd", 0.0, 0.0) == 0.0

    def test_moved_prorates_partial_overlap(self):
        trace = Trace()
        trace.record("link", "t", 0.0, 4.0, 8 * GB)
        assert trace.moved("link") == pytest.approx(8 * GB)
        assert trace.moved("link", 0.0, 2.0) == pytest.approx(4 * GB)

    def test_moved_filters_by_label_prefix(self):
        trace = Trace()
        trace.record("link", "grad_b0", 0.0, 1.0, 1.0)
        trace.record("link", "act_b0", 1.0, 2.0, 2.0)
        assert trace.moved("link", label_prefix="grad") == pytest.approx(1.0)

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            Trace().record("r", "l", 2.0, 1.0, 0.0)

    def test_resources_listing(self):
        trace = Trace()
        trace.record("b", "l", 0, 1, 0)
        trace.record("a", "l", 0, 1, 0)
        assert trace.resources() == ["a", "b"]
