"""Integration tests: every experiment harness reproduces its paper shape."""

from __future__ import annotations

import math

import pytest

from repro.experiments import (
    fig1_breakdown,
    fig2_motivation,
    fig5_throughput,
    fig6_max_model,
    fig7_gradient_offload,
    fig8_act_to_ssd,
    fig9_act_strategy,
    fig10_ssd_scaling,
    fig11_multi_gpu,
    fig12_diffusion,
    fig13_cost,
)
from repro.experiments.common import is_failed


def last(values):
    return values[-1]


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1_breakdown.run()

    def test_three_systems(self, result):
        assert [row[0] for row in result.rows] == ["ZeRO-Infinity", "G10", "Ratel"]

    def test_ratel_has_no_optimizer_stage(self, result):
        by_name = {row[0]: row for row in result.rows}
        assert by_name["Ratel"][3] == 0.0
        assert by_name["ZeRO-Infinity"][3] > 10
        assert by_name["G10"][3] > 5

    def test_ratel_fastest_iteration(self, result):
        iters = {row[0]: row[4] for row in result.rows}
        assert iters["Ratel"] < iters["G10"] < iters["ZeRO-Infinity"]

    def test_zero_infinity_near_paper_breakdown(self, result):
        row = next(r for r in result.rows if r[0] == "ZeRO-Infinity")
        assert row[1] == pytest.approx(14, rel=0.35)  # forward
        assert row[2] == pytest.approx(26, rel=0.35)  # backward
        assert row[3] == pytest.approx(23, rel=0.35)  # optimizer

    def test_renders(self, result):
        text = result.render()
        assert "fig1" in text and "Ratel" in text


class TestFig2:
    def test_fig2a_flashneuron_flat_and_small(self):
        result = fig2_motivation.run_fig2a()
        flash = result.column("FlashNeuron")
        assert max(flash) < 2.0
        assert min(flash) == max(flash)

    def test_fig2a_zero_infinity_grows_with_memory(self):
        result = fig2_motivation.run_fig2a()
        zero = result.column("ZeRO-Infinity")
        assert zero == sorted(zero)
        assert zero[-1] < 200  # paper: <= 135B even at 768 GB

    def test_fig2b_gpu_busy_low(self):
        result = fig2_motivation.run_fig2b()
        for row in result.rows:
            for value in row[1:]:
                if not is_failed(value):
                    assert value < 60.0

    def test_fig2c_optimizer_share_30_to_60(self):
        result = fig2_motivation.run_fig2c()
        batch_8_row = next(row for row in result.rows if row[0] == 8)
        for value in batch_8_row[1:]:
            if not is_failed(value):
                assert 30.0 < value < 65.0


class TestFig5:
    @pytest.fixture(scope="class")
    def fig5a(self):
        return fig5_throughput.run_fig5a()

    def test_ratel_wins_every_batch(self, fig5a):
        ratel = fig5a.column("Ratel")
        for name in ("Colossal-AI", "ZeRO-Infinity", "ZeRO-Offload"):
            for ours, theirs in zip(ratel, fig5a.column(name)):
                if not is_failed(theirs):
                    assert ours > theirs

    def test_paper_speedup_ratios_at_best_batch(self, fig5a):
        """>= 2.32x / 3.46x / 8.02x in the paper; we require >= 2/2.5/4."""
        ratel = max(fig5a.column("Ratel"))
        assert ratel / max(v for v in fig5a.column("ZeRO-Offload") if not is_failed(v)) > 1.6
        assert ratel / max(v for v in fig5a.column("ZeRO-Infinity") if not is_failed(v)) > 1.8
        assert ratel / max(v for v in fig5a.column("Colossal-AI") if not is_failed(v)) > 4.0

    def test_fig5b_3090_same_ordering(self):
        result = fig5_throughput.run_fig5b()
        row32 = next(row for row in result.rows if row[0] == 32)
        colossal, zero_inf, zero_off, ratel = row32[1:]
        assert ratel > zero_off > zero_inf > colossal

    def test_fig5c_ratel_near_peak_below_70b(self):
        result = fig5_throughput.run_fig5c()
        peak = result.rows[0][-1]
        for row in result.rows:
            if row[0] in ("13B", "30B", "70B"):
                ratel = row[3]
                assert ratel > 0.85 * peak

    def test_fig5c_baselines_well_below_peak(self):
        result = fig5_throughput.run_fig5c()
        peak = result.rows[0][-1]
        for row in result.rows:
            zero_inf = row[1]
            if not is_failed(zero_inf):
                assert zero_inf < 0.6 * peak


class TestFig6:
    @pytest.fixture(scope="class")
    def fig6a(self):
        return fig6_max_model.run_fig6a()

    def test_ratel_dominates_every_point(self, fig6a):
        ratel = fig6a.column("Ratel")
        for name in ("FlashNeuron", "Colossal-AI", "ZeRO-Infinity", "ZeRO-Offload"):
            for ours, theirs in zip(ratel, fig6a.column(name)):
                assert ours > theirs

    def test_headline_276b_at_768gb(self, fig6a):
        at_768 = fig6a.rows[-1]
        assert at_768[0] == 768
        ratel = at_768[-1]
        assert ratel >= 276

    def test_175b_at_256gb(self, fig6a):
        at_256 = next(row for row in fig6a.rows if row[0] == 256)
        assert at_256[-1] >= 175

    def test_4080_still_reaches_175b_at_256gb(self):
        fig6b = fig6_max_model.run_fig6b()
        at_256 = next(row for row in fig6b.rows if row[0] == 256)
        assert at_256[-1] >= 175


class TestFig7:
    def test_optimized_wins_at_large_batch(self):
        result = fig7_gradient_offload.run_fig7a()
        row64 = next(row for row in result.rows if row[0] == 64)
        zero, naive, optimized = row64[1:]
        assert optimized > naive
        assert optimized > 1.2 * zero

    def test_gain_shrinks_at_small_batch(self):
        """Paper: little overlap opportunity at batch 8."""
        result = fig7_gradient_offload.run_fig7a()
        row8 = next(row for row in result.rows if row[0] == 8)
        row64 = next(row for row in result.rows if row[0] == 64)
        gain8 = row8[3] / row8[1]
        gain64 = row64[3] / row64[1]
        assert gain64 > gain8 * 0.8

    def test_175b_panel_runs(self):
        result = fig7_gradient_offload.run_fig7b()
        assert len(result.rows) == 2
        for row in result.rows:
            assert row[3] > 0


class TestFig8:
    def test_ssd_swapping_extends_frontier(self):
        result = fig8_act_to_ssd.run_panel(128)
        for row in result.rows:
            batch, cpuact, optimized, ratio = row
            assert optimized >= cpuact
        ratios = result.column("ratio")
        assert max(ratios) >= 2.0  # paper: 2x-5x


class TestFig9:
    @pytest.fixture(scope="class")
    def fig9(self):
        return fig9_act_strategy.run_fig9a()

    def test_checkmate_fails_at_128(self, fig9):
        _throughput, batches = fig9
        row128 = next(row for row in batches.rows if row[0] == 128)
        assert "Failed" in row128

    def test_ratel_and_g10_keep_batch_32(self, fig9):
        _throughput, batches = fig9
        for row in batches.rows:
            assert row[3] == 32  # Ratel+G10
            assert row[5] == 32  # Ratel

    def test_ratel_steady_across_memory(self, fig9):
        throughput, _batches = fig9
        ratel = throughput.column("Ratel")
        assert min(ratel) > 0.85 * max(ratel)

    def test_ratel_best_at_128gb(self, fig9):
        throughput, _batches = fig9
        row128 = next(row for row in throughput.rows if row[0] == 128)
        ratel = row128[-1]
        others = [v for v in row128[1:-1] if not is_failed(v)]
        assert ratel > max(others)

    def test_fig9b_curves_and_stars(self):
        result = fig9_act_strategy.run_fig9b(n_points=9)
        assert len(result.rows) == 9
        # every curve positive; larger batch = larger times
        for row in result.rows:
            assert row[1] < row[2] < row[3] < row[4]


class TestFig10:
    def test_near_linear_then_saturating(self):
        result = fig10_ssd_scaling.run_fig10a()
        ratel = result.column("Ratel")
        n = result.column("n_ssds")
        # 1 -> 3 SSDs nearly triples throughput
        assert ratel[n.index(3)] > 2.2 * ratel[n.index(1)]
        # 6 -> 12 gains little
        assert ratel[n.index(12)] < 1.35 * ratel[n.index(6)]

    def test_ratel_beats_zero_everywhere(self):
        result = fig10_ssd_scaling.run_fig10a()
        for row in result.rows:
            assert row[2] > row[1]

    def test_larger_batch_needs_fewer_ssds(self):
        result = fig10_ssd_scaling.run_fig10b()
        by_n = {row[0]: row for row in result.rows}
        # At 3 SSDs, bigger batches achieve a larger fraction of their
        # 12-SSD throughput.
        frac32 = by_n[3][1] / by_n[12][1]
        frac64 = by_n[3][3] / by_n[12][3]
        assert frac64 > frac32


class TestFig11:
    def test_ratel_beats_zero_on_all_panels(self):
        for panel in fig11_multi_gpu.run():
            for row in panel.rows:
                zero, ratel = row[1], row[2]
                if not is_failed(zero) and not is_failed(ratel):
                    assert ratel > zero


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_diffusion.run()

    def test_fastdit_oom_past_1_4b(self, result):
        for row in result.rows:
            if row[0] in ("10B", "20B", "40B"):
                assert row[2] == "OOM"

    def test_ratel_trains_everything(self, result):
        for row in result.rows:
            assert not is_failed(row[3])

    def test_ratel_wins_where_both_fit(self, result):
        for row in result.rows:
            if row[2] != "OOM":
                assert row[3] > row[1]


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig13_cost.run()

    def test_peak_ratio_near_paper(self, result):
        """Paper: at most 2.17x over the DGX; we accept 1.5x-3.5x."""
        ratios = [row[3] for row in result.rows if not is_failed(row[3])]
        assert 1.5 < max(ratios) < 3.5

    def test_monotone_then_flattening(self, result):
        ce = [row[1] for row in result.rows if not is_failed(row[1])]
        assert ce[0] < ce[-1]
        n = result.column("n_ssds")
        gain_6_to_12 = ce[n.index(12)] / ce[n.index(6)]
        assert gain_6_to_12 < 1.25  # knee: more SSDs stop paying off
