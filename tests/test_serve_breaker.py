"""The circuit breaker's state machine (repro.serve.breaker).

The hypothesis properties pin the two contracts the service leans on:
the breaker **never serves while open** (before the cooldown elapses),
and it **always recovers** — from any reachable state, a cooled-down
breaker plus enough successful probes is closed again.  The clock is
injected, so simulated time drives every schedule.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve import CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make_breaker(clock, **kwargs):
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("cooldown_s", 10.0)
    return CircuitBreaker(clock=clock, **kwargs)


class TestBreakerBasics:
    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_failure_count(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_cooldown_admits_a_probe_then_success_closes(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.cooldown_remaining() == pytest.approx(10.0)
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.allow()
        # One probe in flight: concurrent callers are refused.
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure("probe crashed")
        assert breaker.state == "open"
        assert breaker.cooldown_remaining() == pytest.approx(10.0)

    def test_transitions_are_recorded_in_order(self):
        clock = FakeClock()
        seen = []
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=5.0, clock=clock,
            on_transition=seen.append,
        )
        breaker.record_failure("boom")
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        states = [t.to_state for t in breaker.transitions]
        assert states == ["open", "half_open", "closed"]
        assert seen == breaker.transitions
        assert "boom" in breaker.transitions[0].reason

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"cooldown_s": -1.0},
            {"success_threshold": 0},
            {"max_probes": 0},
        ],
    )
    def test_malformed_breakers_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)


OPS = st.lists(
    st.one_of(
        st.just("fail"),
        st.just("ok"),
        st.floats(min_value=0.0, max_value=30.0),  # clock advance
    ),
    max_size=40,
)


def drive(breaker, clock, ops):
    """Apply a random op sequence, pairing every admit with a record."""
    for op in ops:
        if isinstance(op, float):
            clock.advance(op)
        elif breaker.allow():
            if op == "fail":
                breaker.record_failure()
            else:
                breaker.record_success()


class TestBreakerProperties:
    @given(ops=OPS, threshold=st.integers(min_value=1, max_value=4))
    @settings(max_examples=200, deadline=None)
    def test_never_serves_while_open(self, ops, threshold):
        clock = FakeClock()
        breaker = make_breaker(clock, failure_threshold=threshold)
        drive(breaker, clock, ops)
        # Whatever state the ops reached: while the cooldown is still
        # running the breaker must refuse every caller.
        if breaker.state == "open":
            assert breaker.cooldown_remaining() > 0
            assert not breaker.allow()
            clock.advance(breaker.cooldown_remaining() * 0.5)
            if breaker.state == "open":
                assert not breaker.allow()

    @given(
        ops=OPS,
        threshold=st.integers(min_value=1, max_value=4),
        successes=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=200, deadline=None)
    def test_always_recovers_after_cooldown_and_probes(
        self, ops, threshold, successes
    ):
        clock = FakeClock()
        breaker = make_breaker(
            clock, failure_threshold=threshold, success_threshold=successes
        )
        drive(breaker, clock, ops)
        clock.advance(breaker.cooldown_s + 1.0)
        for _ in range(successes):
            if breaker.state == "closed":
                break
            assert breaker.allow(), "cooled-down breaker refused its probe"
            breaker.record_success()
        assert breaker.state == "closed"

    @given(ops=OPS)
    @settings(max_examples=200, deadline=None)
    def test_transition_log_alternates_legally(self, ops):
        clock = FakeClock()
        breaker = make_breaker(clock)
        drive(breaker, clock, ops)
        breaker.state  # force a final tick
        legal = {
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "open"),
            ("half_open", "closed"),
        }
        previous = "closed"
        for transition in breaker.transitions:
            assert transition.from_state == previous
            assert (transition.from_state, transition.to_state) in legal
            previous = transition.to_state
