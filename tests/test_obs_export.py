"""Chrome-trace export round-trips for sim and runtime traces.

Satellite coverage for :mod:`repro.sim.export`: a simulated iteration
and an instrumented runtime ``train_step`` both go through
:func:`trace_to_events` / :func:`write_chrome_trace`; lane assignment,
microsecond units and stage-window markers are asserted on the actual
event dicts, and one merged sim+runtime trace loads as schema-valid
JSON with both families of lanes.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.core import RatelPolicy
from repro.hardware import evaluation_server
from repro.models import llm, profile_model
from repro.obs import spans
from repro.runtime import (
    CrossEntropyLoss,
    GPTModel,
    RatelOptimizer,
    ratel_hook,
    ratel_init,
)
from repro.sim import lane_order, merge_traces, trace_to_events, write_chrome_trace
from repro.sim.trace import Trace

GB = 1e9


@pytest.fixture(scope="module")
def sim_result():
    outcome = RatelPolicy().evaluate(profile_model(llm("13B"), 32), evaluation_server())
    return outcome.require_result()


@pytest.fixture(scope="module")
def runtime_recording():
    loss_fn = CrossEntropyLoss()
    with ratel_init(
        gpu_capacity=1 * GB,
        host_capacity=1 * GB,
        nvme_capacity=4 * GB,
        active_offload=True,
    ):
        model = GPTModel(37, 16, 2, 2, 8, np.random.default_rng(5))
        runtime = ratel_hook(model)
        RatelOptimizer(model, runtime, lr=1e-2)
        rng = np.random.default_rng(7)
        ids = rng.integers(0, 37, size=(2, 8))
        with obs.observe() as rec:
            runtime.train_step(lambda: loss_fn(model(ids), np.roll(ids, -1, axis=1)))
    return rec


class TestLaneOrder:
    def test_canonical_sim_lanes_pinned_first(self, sim_result):
        order = lane_order(sim_result.trace)
        canonical = [
            name for name in ("gpu0", "pcie_m2g0", "pcie_g2m0", "ssd", "cpu_adam")
            if name in order
        ]
        assert order[: len(canonical)] == canonical

    def test_many_gpus_grouped_per_device(self):
        trace = Trace()
        for gpu in (0, 5, 11):  # beyond any hardcoded 4-GPU table
            trace.record(f"gpu{gpu}", "k", 0.0, 1.0, 0.0)
            trace.record(f"pcie_g2m{gpu}", "x", 0.0, 1.0, 0.0)
            trace.record(f"pcie_m2g{gpu}", "x", 0.0, 1.0, 0.0)
        trace.record("ssd", "io", 0.0, 1.0, 0.0)
        order = lane_order(trace)
        assert order == [
            "gpu0", "pcie_m2g0", "pcie_g2m0",
            "gpu5", "pcie_m2g5", "pcie_g2m5",
            "gpu11", "pcie_m2g11", "pcie_g2m11",
            "ssd",
        ]

    def test_rt_lanes_follow_sim_lanes(self):
        trace = Trace()
        trace.record("rt_ssd", "io", 0.0, 1.0, 0.0)
        trace.record("gpu0", "k", 0.0, 1.0, 0.0)
        trace.record("rt_step", "s", 0.0, 1.0, 0.0)
        assert lane_order(trace) == ["gpu0", "rt_step", "rt_ssd"]

    def test_unknown_names_sort_last_alphabetically(self):
        trace = Trace()
        for name in ("zebra", "gpu0", "aardvark", "rt_custom"):
            trace.record(name, "x", 0.0, 1.0, 0.0)
        assert lane_order(trace) == ["gpu0", "rt_custom", "aardvark", "zebra"]

    def test_every_resource_gets_its_own_lane(self, sim_result):
        events = trace_to_events(sim_result.trace)
        lanes = {e["args"]["name"]: e["pid"] for e in events if e["ph"] == "M"}
        assert len(set(lanes.values())) == len(lanes)
        assert set(lanes) == set(sim_result.trace.resources())


class TestSimExport:
    def test_slices_carry_microsecond_units(self, sim_result):
        events = trace_to_events(sim_result.trace)
        slices = [e for e in events if e["ph"] == "X"]
        interval = sim_result.trace.intervals[0]
        first = slices[0]
        assert first["ts"] == pytest.approx(interval.start * 1e6)
        assert first["dur"] == pytest.approx(interval.duration * 1e6)

    def test_slice_pid_matches_lane(self, sim_result):
        events = trace_to_events(sim_result.trace)
        lanes = {e["args"]["name"]: e["pid"] for e in events if e["ph"] == "M"}
        for event in events:
            if event["ph"] == "X":
                assert event["pid"] == lanes[event["cat"]]

    def test_stage_markers_on_dedicated_lane(self, sim_result):
        events = trace_to_events(
            sim_result.trace, stage_windows=sim_result.stage_windows
        )
        lanes = {e["args"]["name"]: e["pid"] for e in events if e["ph"] == "M"}
        stage_events = [e for e in events if e.get("cat") == "stage"]
        assert {e["name"] for e in stage_events} == set(sim_result.stage_windows)
        assert all(e["pid"] == lanes["stages"] for e in stage_events)
        assert lanes["stages"] == max(lanes.values())

    def test_written_file_is_loadable_json(self, sim_result, tmp_path):
        path = tmp_path / "iteration.json"
        write_chrome_trace(
            sim_result.trace, str(path), stage_windows=sim_result.stage_windows
        )
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) > len(sim_result.trace.intervals)


class TestRuntimeExport:
    def test_runtime_trace_exports_rt_lanes(self, runtime_recording):
        events = trace_to_events(
            runtime_recording.trace, stage_windows=runtime_recording.stage_windows
        )
        categories = {e["cat"] for e in events if e["ph"] == "X"}
        assert spans.RT_STEP in categories
        assert spans.RT_COMPUTE in categories
        assert "stage" in categories

    def test_runtime_stage_markers(self, runtime_recording):
        events = trace_to_events(
            runtime_recording.trace, stage_windows=runtime_recording.stage_windows
        )
        names = {e["name"] for e in events if e.get("cat") == "stage"}
        assert any(name.startswith("forward") for name in names)
        assert any(name.startswith("backward") for name in names)


class TestMergedExport:
    """Acceptance: one trace JSON holding sim AND runtime spans."""

    def test_merged_trace_has_both_families(
        self, sim_result, runtime_recording, tmp_path
    ):
        merged = merge_traces(sim_result.trace, runtime_recording.trace)
        path = tmp_path / "merged.json"
        write_chrome_trace(merged, str(path), stage_windows=sim_result.stage_windows)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        # Schema: every event has the trace-event required keys.
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            assert event["ph"] in ("X", "M")
            if event["ph"] == "X":
                assert event["dur"] >= 0
        categories = {e["cat"] for e in events if e["ph"] == "X"}
        assert "gpu0" in categories  # simulator lane
        assert any(c.startswith("rt_") for c in categories)  # runtime lane

    def test_merge_keeps_inputs_untouched(self, sim_result, runtime_recording):
        before = len(sim_result.trace.intervals), len(runtime_recording.trace.intervals)
        merged = merge_traces(sim_result.trace, runtime_recording.trace)
        assert len(merged.intervals) == before[0] + before[1]
        after = len(sim_result.trace.intervals), len(runtime_recording.trace.intervals)
        assert before == after

    def test_sim_lanes_precede_runtime_lanes(self, sim_result, runtime_recording):
        merged = merge_traces(sim_result.trace, runtime_recording.trace)
        order = lane_order(merged)
        last_sim = max(i for i, n in enumerate(order) if not n.startswith("rt_"))
        first_rt = min(i for i, n in enumerate(order) if n.startswith("rt_"))
        assert last_sim < first_rt
