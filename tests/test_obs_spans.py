"""Tests for runtime span tracing (:mod:`repro.obs.spans`).

The recorder mechanics (fake clocks, enable/disable, stage windows, the
zero-allocation disabled path) plus the real thing: an instrumented
:meth:`RatelRuntime.train_step` under :func:`obs.observe` produces
``rt_*`` lanes, stage windows, storage-move spans and CPU-Adam spans in
one ordinary :class:`~repro.sim.trace.Trace`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.obs import spans
from repro.obs.metrics import MetricsRegistry
from repro.runtime import (
    CrossEntropyLoss,
    GPTModel,
    NVME,
    RatelOptimizer,
    ratel_hook,
    ratel_init,
)

GB = 1e9
VOCAB, DIM, LAYERS, HEADS, SEQ, BATCH = 37, 16, 2, 2, 8, 2


class FakeClock:
    def __init__(self):
        self.t = 100.0  # non-zero origin: spans must still start at t=0

    def __call__(self):
        return self.t

    def tick(self, dt):
        self.t += dt


class TestSpanRecorder:
    def test_origin_is_zero(self):
        clock = FakeClock()
        rec = spans.SpanRecorder(clock=clock)
        clock.tick(2.0)
        with rec.span("rt_ssd", "io"):
            clock.tick(3.0)
        (interval,) = rec.trace.intervals
        assert interval.start == pytest.approx(2.0)
        assert interval.end == pytest.approx(5.0)
        assert interval.resource == "rt_ssd"
        assert interval.label == "io"

    def test_span_recorded_even_on_exception(self):
        clock = FakeClock()
        rec = spans.SpanRecorder(clock=clock)
        with pytest.raises(RuntimeError):
            with rec.span("rt_compute", "boom"):
                clock.tick(1.0)
                raise RuntimeError("kernel failed")
        assert rec.trace.busy_time("rt_compute") == pytest.approx(1.0)

    def test_stage_windows(self):
        clock = FakeClock()
        rec = spans.SpanRecorder(clock=clock)
        with rec.stage("forward"):
            clock.tick(4.0)
        assert rec.stage_windows["forward"] == (pytest.approx(0.0), pytest.approx(4.0))

    def test_span_feeds_registry(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        rec = spans.SpanRecorder(clock=clock, registry=registry)
        with rec.span("rt_ssd", "io", amount=1024.0):
            clock.tick(2.0)
        snapshot = registry.snapshot()
        assert snapshot.value("rt_spans_total", lane="rt_ssd") == 1
        assert snapshot.value("rt_busy_seconds_total", lane="rt_ssd") == pytest.approx(2.0)
        assert snapshot.value("rt_amount_total", lane="rt_ssd") == 1024.0


class TestEnableDisable:
    def test_disabled_by_default(self):
        assert spans.recorder() is None

    def test_maybe_span_is_shared_noop_when_disabled(self):
        assert spans.maybe_span("rt_ssd", "a") is spans.maybe_span("rt_compute", "b")

    def test_observe_enables_and_restores(self):
        assert spans.recorder() is None
        with obs.observe() as rec:
            assert spans.recorder() is rec
            with spans.maybe_span("rt_ssd", "io"):
                pass
        assert spans.recorder() is None
        assert rec.trace.resources() == ["rt_ssd"]

    def test_observe_nests(self):
        with obs.observe() as outer:
            with obs.observe() as inner:
                assert spans.recorder() is inner
            assert spans.recorder() is outer
        assert spans.recorder() is None

    def test_enable_disable_explicit(self):
        rec = spans.enable()
        try:
            assert spans.recorder() is rec
            assert spans.enable() is rec  # idempotent
        finally:
            spans.disable()
        assert spans.recorder() is None

    def test_link_lane_names(self):
        assert spans.link_lane("gpu", "host") == "rt_gpu2host"
        assert spans.link_lane("host", "nvme") == "rt_host2nvme"


class TestRuntimeInstrumentation:
    """A real train_step under observe() lands in rt_* swim-lanes."""

    @pytest.fixture(scope="class")
    def recorded(self):
        loss_fn = CrossEntropyLoss()
        with ratel_init(
            gpu_capacity=1 * GB,
            host_capacity=1 * GB,
            nvme_capacity=4 * GB,
            checkpoint_tier=NVME,
            active_offload=True,
        ):
            model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(5))
            runtime = ratel_hook(model)
            RatelOptimizer(model, runtime, lr=1e-2)
            rng = np.random.default_rng(99)
            ids = rng.integers(0, VOCAB, size=(BATCH, SEQ))
            targets = np.roll(ids, -1, axis=1)
            with obs.observe() as rec:
                runtime.train_step(lambda: loss_fn(model(ids), targets))
        return rec

    def test_rt_lanes_present(self, recorded):
        resources = set(recorded.trace.resources())
        assert spans.RT_STEP in resources
        assert spans.RT_COMPUTE in resources
        assert spans.RT_CPU_ADAM in resources
        # NVMe checkpoints force host<->nvme movement through the manager.
        assert any(name.startswith("rt_") and "2" in name for name in resources)

    def test_all_lanes_namespaced(self, recorded):
        assert all(name.startswith("rt_") for name in recorded.trace.resources())

    def test_stage_windows_cover_forward_and_backward(self, recorded):
        names = set(recorded.stage_windows)
        assert any(name.startswith("forward") for name in names)
        assert any(name.startswith("backward") for name in names)

    def test_step_span_encloses_compute(self, recorded):
        steps = [i for i in recorded.trace.intervals if i.resource == spans.RT_STEP]
        assert len(steps) == 1
        (step,) = steps
        for interval in recorded.trace.intervals:
            if interval.resource == spans.RT_COMPUTE:
                assert interval.start >= step.start - 1e-9
                assert interval.end <= step.end + 1e-9

    def test_adam_spans_one_per_parameter_update(self, recorded):
        adam = [i for i in recorded.trace.intervals if i.resource == spans.RT_CPU_ADAM]
        # Active offloading updates every parameter once per step.
        assert len(adam) > 0
        assert all(i.label.startswith("adam:") for i in adam)

    def test_attribution_works_on_runtime_trace(self, recorded):
        report = obs.attribute(recorded.trace, recorded.stage_windows)
        assert report.iteration_time > 0
        backward = next(
            b for b in report.stages if b.stage.startswith("backward")
        )
        assert backward.bottleneck.startswith("rt_")

    def test_disabled_train_step_records_nothing(self):
        loss_fn = CrossEntropyLoss()
        with ratel_init(
            gpu_capacity=1 * GB,
            host_capacity=1 * GB,
            nvme_capacity=4 * GB,
            active_offload=True,
        ):
            model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(5))
            runtime = ratel_hook(model)
            RatelOptimizer(model, runtime, lr=1e-2)
            rng = np.random.default_rng(99)
            ids = rng.integers(0, VOCAB, size=(BATCH, SEQ))
            targets = np.roll(ids, -1, axis=1)
            assert spans.recorder() is None
            loss = runtime.train_step(lambda: loss_fn(model(ids), targets))
        assert np.isfinite(loss)

    def test_instrumented_equals_uninstrumented_loss(self):
        def one_step(instrumented: bool) -> float:
            loss_fn = CrossEntropyLoss()
            with ratel_init(
                gpu_capacity=1 * GB,
                host_capacity=1 * GB,
                nvme_capacity=4 * GB,
                active_offload=True,
            ):
                model = GPTModel(VOCAB, DIM, LAYERS, HEADS, SEQ, np.random.default_rng(5))
                runtime = ratel_hook(model)
                RatelOptimizer(model, runtime, lr=1e-2)
                rng = np.random.default_rng(99)
                ids = rng.integers(0, VOCAB, size=(BATCH, SEQ))
                targets = np.roll(ids, -1, axis=1)
                if instrumented:
                    with obs.observe():
                        return runtime.train_step(lambda: loss_fn(model(ids), targets))
                return runtime.train_step(lambda: loss_fn(model(ids), targets))

        assert one_step(True) == one_step(False)
