"""Tests for the hardware catalog: specs, presets, derived quantities."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.hardware import (
    DGX_A100,
    EVALUATION_SERVER,
    GB,
    GiB,
    HardwareError,
    INTEL_P5510,
    PCIE_GEN4_X16_MEASURED,
    RTX_3090,
    RTX_4080,
    RTX_4090,
    TB,
    TFLOPS,
    evaluation_server,
    fmt_bytes,
    fmt_flops,
    fmt_rate,
    fmt_time,
    gpu_occupancy,
)
from repro.hardware.spec import CPUSpec, GPUSpec, PCIeLinkSpec, SSDSpec, ServerSpec


class TestUnits:
    def test_si_prefixes(self):
        assert GB == 10**9
        assert TB == 10**12
        assert GiB == 2**30

    def test_fmt_bytes(self):
        assert fmt_bytes(34 * GB) == "34.00 GB"
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(2.5 * TB) == "2.50 TB"

    def test_fmt_rate(self):
        assert fmt_rate(21 * GB) == "21.00 GB/s"

    def test_fmt_flops(self):
        assert fmt_flops(165 * TFLOPS) == "165.00 TFLOP"

    def test_fmt_time(self):
        assert fmt_time(23.0) == "23.00 s"
        assert fmt_time(0.0042) == "4.20 ms"
        assert fmt_time(5e-6) == "5.00 us"


class TestGPUSpec:
    def test_usable_memory_subtracts_reserve(self):
        assert RTX_4090.usable_memory_bytes == RTX_4090.memory_bytes - RTX_4090.reserved_bytes

    def test_paper_gpu_lineup(self):
        assert RTX_4090.memory_bytes == 24 * GiB
        assert RTX_4080.memory_bytes == 16 * GiB
        assert RTX_3090.memory_bytes == 24 * GiB
        assert RTX_4090.price_usd == 1600.0

    def test_consumer_gpus_lack_gpudirect(self):
        assert not RTX_4090.supports_gpudirect
        assert not RTX_4080.supports_gpudirect

    def test_rejects_nonpositive_memory(self):
        with pytest.raises(HardwareError):
            GPUSpec("bad", 0, 1.0, 1.0)

    def test_rejects_reserve_exceeding_memory(self):
        with pytest.raises(HardwareError):
            GPUSpec("bad", 1 * GB, 1.0, 1.0, reserved_bytes=2 * GB)


class TestOccupancy:
    def test_half_peak_at_saturation_point(self):
        assert gpu_occupancy(4096, 4096) == pytest.approx(0.5)

    def test_batch32_seq1024_near_saturated(self):
        occ = gpu_occupancy(32 * 1024, RTX_4090.saturation_tokens)
        assert 0.85 < occ < 0.95

    def test_monotone_in_tokens(self):
        values = [gpu_occupancy(t, 4096) for t in (1024, 4096, 16384, 65536)]
        assert values == sorted(values)
        assert values[-1] < 1.0

    def test_rejects_zero_tokens(self):
        with pytest.raises(HardwareError):
            gpu_occupancy(0, 4096)

    @given(st.floats(min_value=1, max_value=1e7))
    def test_bounded_by_one(self, tokens):
        assert 0 < gpu_occupancy(tokens, 4096) < 1


class TestSSDArray:
    def test_single_ssd_rates(self):
        server = evaluation_server(n_ssds=1)
        assert server.ssd_read_bw == pytest.approx(6.2 * GB)
        assert server.ssd_write_bw == pytest.approx(3.5 * GB)

    def test_platform_cap_binds_at_twelve(self):
        server = evaluation_server(n_ssds=12)
        assert server.ssd_read_bw == pytest.approx(32 * GB)  # 74.4 capped
        assert server.ssd_write_bw == pytest.approx(32 * GB)  # 42 capped

    def test_write_bw_scales_before_cap(self):
        server = evaluation_server(n_ssds=6)
        assert server.ssd_write_bw == pytest.approx(21 * GB)

    def test_capacity_scales_linearly(self):
        assert evaluation_server(n_ssds=12).ssd_capacity_bytes == pytest.approx(
            12 * 3.84 * TB
        )

    def test_zero_ssds_means_zero_bandwidth(self):
        server = evaluation_server(n_ssds=0)
        assert server.ssd_read_bw == 0.0
        assert server.ssd_write_bw == 0.0


class TestServerSpec:
    def test_evaluation_server_matches_table_iii(self, server):
        assert server.gpu is RTX_4090
        assert server.main_memory_bytes == 768 * GiB
        assert server.n_ssds == 12
        assert server.cpu.total_cores == 52

    def test_price_follows_table_vii(self):
        server = evaluation_server(n_gpus=4, n_ssds=12)
        expected = 14098 + 4 * 1600 + 12 * 308
        assert server.price_usd == pytest.approx(expected)

    def test_dgx_price_is_200k(self):
        assert DGX_A100.price_usd == pytest.approx(200_000.0)

    def test_with_main_memory_returns_copy(self, server):
        smaller = server.with_main_memory(128 * GiB)
        assert smaller.main_memory_bytes == 128 * GiB
        assert server.main_memory_bytes == 768 * GiB

    def test_with_gpu_swaps_device(self, server):
        swapped = server.with_gpu(RTX_4080)
        assert swapped.gpu is RTX_4080
        assert swapped.n_gpus == server.n_gpus

    def test_usable_main_memory_subtracts_reserve(self, server):
        assert server.usable_main_memory_bytes == (
            server.main_memory_bytes - server.host_reserved_bytes
        )

    def test_rejects_memory_below_reserve(self):
        with pytest.raises(HardwareError):
            evaluation_server(main_memory_bytes=1 * GB)

    def test_rejects_zero_gpus(self):
        with pytest.raises(HardwareError):
            ServerSpec(
                name="bad",
                gpu=RTX_4090,
                n_gpus=0,
                cpu=EVALUATION_SERVER.cpu,
                main_memory_bytes=128 * GiB,
                ssd=INTEL_P5510,
                n_ssds=1,
                gpu_link=PCIE_GEN4_X16_MEASURED,
                ssd_platform_bw_cap=32 * GB,
            )


class TestComponentValidation:
    def test_cpu_adam_time(self):
        cpu = CPUSpec("c", 1, 8, 1e9, 100 * GB)
        assert cpu.adam_time(13e9) == pytest.approx(13.0)

    def test_cpu_rejects_bad_counts(self):
        with pytest.raises(HardwareError):
            CPUSpec("c", 0, 8, 1e9, 100 * GB)

    def test_ssd_rejects_bad_bandwidth(self):
        with pytest.raises(HardwareError):
            SSDSpec("s", 1 * TB, 0, 1 * GB, 100.0)

    def test_link_rejects_zero_bandwidth(self):
        with pytest.raises(HardwareError):
            PCIeLinkSpec("l", 0)
