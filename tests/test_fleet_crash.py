"""Crash-fault tolerance of the fleet: journal, recovery, node fail-stop.

The tentpole's contract, pinned from four sides:

* **journal fold** — the record grammar folds to last-write-wins job
  state; duplicate terminals are counted (and must stay 0 in any run
  the fleet itself produced); garbage lines are skipped, never fatal.
* **recovery** — after a simulated ``kill -9`` (coordinator abandoned,
  torn half-record glued onto the journal tail), :meth:`Fleet.recover`
  repairs the tail and rebuilds the fleet: terminal jobs stay terminal,
  live jobs requeue at their last checkpoint, the clock and the
  priority-aging ages resume where the journal left them.
* **node fail-stop** — a crash unseats the running job (rolled back to
  its checkpoint, or to zero without one), the flap hysteresis
  quarantines a node that keeps dying, and ``restore()`` is the
  operator's way back.
* **hypothesis properties** — across random traces, kill instants and
  all four schedulers: every submitted job reaches exactly one terminal
  state (conservation), the journal holds at most one terminal record
  per job (exactly-once), and recovering twice yields identical fleets
  (replay idempotency).
"""

from __future__ import annotations

import math
import os
import tempfile
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import RatelPolicy
from repro.faults import NodeCrash, NodeFaultSchedule, NodeFlap
from repro.faults.schedule import FaultScheduleError
from repro.fleet import (
    Fleet,
    FleetError,
    FleetJournal,
    JobSpec,
    Node,
    run_crash_drill,
)
from repro.hardware import evaluation_server


class StubOracle:
    """Constant-time costs (mirrors test_fleet's stub)."""

    def __init__(self, speeds=None, degrade_factor=3.0):
        self.speeds = speeds or {}
        self.degrade_factor = degrade_factor

    def feasible(self, spec, node):
        if spec.hardware_class is not None:
            return spec.hardware_class == node.hardware_class
        return True

    def iteration_time(self, spec, node):
        if not self.feasible(spec, node):
            return math.nan
        base = {"30B": 30.0, "13B": 8.0, "6B": 2.0}.get(spec.model, 5.0)
        speed = self.speeds.get(node.name, 1.0)
        sag = self.degrade_factor if (node.failed_ssds or node.bw_sag < 1.0) else 1.0
        return base * speed * sag

    def service_time(self, spec, node, iterations):
        return iterations * self.iteration_time(spec, node)

    def needs(self, spec, node):
        return None


def stub_nodes(n=2, hardware_class=None):
    server = evaluation_server(n_ssds=2)
    return [
        Node(f"n{i}", server, RatelPolicy(), hardware_class=hardware_class)
        for i in range(n)
    ]


def job(job_id, model="6B", **kwargs):
    batch = {"30B": 32, "13B": 16, "6B": 8}[model]
    kwargs.setdefault("iterations", 5)
    return JobSpec(job_id, model=model, batch_size=batch, **kwargs)


#: The torn half-record a SIGKILL between write() and newline leaves.
TORN = b'{"rec": "assign", "job_id"'


def kill_minus_nine(fleet) -> str:
    """Abandon the coordinator and tear the journal tail, as SIGKILL would."""
    path = fleet.journal.path
    fleet.journal.close()
    with open(path, "ab") as handle:
        handle.write(TORN)
    return path


def journaled_fleet(tmp_path, scheduler="fifo", n=2, oracle=None, **kwargs):
    path = str(tmp_path / "journal.jsonl")
    fleet = Fleet(
        stub_nodes(n), scheduler, oracle=oracle or StubOracle(), journal=path, **kwargs
    )
    return fleet, path


# -- journal fold ---------------------------------------------------------------


class TestJournalFold:
    def _journal(self, tmp_path):
        return FleetJournal(str(tmp_path / "j.jsonl"))

    def test_lifecycle_folds_to_last_write(self, tmp_path):
        journal = self._journal(tmp_path)
        spec = job("a", iterations=10, checkpoint_every=2)
        journal.append("submit", 0.0, job=spec.to_payload(), seq=0, submitted_at=0.0)
        journal.append(
            "assign", 0.0, job_id="a", node="n0", iter_time=2.0, remaining=10,
            migrated=False,
        )
        journal.append("checkpoint", 8.0, job_id="a", node="n0", iterations=4)
        fold = journal.fold()
        a = fold.jobs["a"]
        assert a.state == "running" and a.node == "n0"
        assert a.checkpointed == 4 and a.resume_iterations == 6
        assert fold.clock == 8.0 and fold.order == ["a"]
        assert [jf.spec.job_id for jf in fold.pending] == ["a"]

        journal.append(
            "finish", 20.0, job_id="a", node="n0", started_at=0.0,
            iteration_time=2.0, preemptions=0, migrations=0, lost=0,
            nodes_visited=["n0"],
        )
        fold = journal.fold()
        assert fold.jobs["a"].terminal and not fold.pending
        journal.close()

    def test_duplicate_terminal_counted_first_wins(self, tmp_path):
        journal = self._journal(tmp_path)
        spec = job("a")
        journal.append("submit", 0.0, job=spec.to_payload(), seq=0, submitted_at=0.0)
        journal.append(
            "finish", 10.0, job_id="a", node="n0", started_at=0.0,
            iteration_time=2.0, preemptions=0, migrations=0, lost=0,
            nodes_visited=["n0"],
        )
        journal.append("reject", 11.0, job_id="a", reason="late duplicate")
        fold = journal.fold()
        assert fold.duplicate_terminals == 1
        assert fold.jobs["a"].state == "completed"  # the first terminal wins
        journal.close()

    def test_checkpoint_is_monotone(self, tmp_path):
        journal = self._journal(tmp_path)
        spec = job("a", iterations=10)
        journal.append("submit", 0.0, job=spec.to_payload(), seq=0, submitted_at=0.0)
        journal.append("checkpoint", 8.0, job_id="a", node="n0", iterations=5)
        journal.append("checkpoint", 9.0, job_id="a", node="n0", iterations=3)
        assert journal.fold().jobs["a"].checkpointed == 5
        journal.close()

    def test_unmatched_and_garbage_records_skipped(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = FleetJournal(path)
        journal.append("checkpoint", 1.0, job_id="ghost", node="n0", iterations=2)
        journal.close()
        with open(path, "a") as handle:
            handle.write("not json at all\n")
            handle.write('{"rec": "martian", "t": 2.0}\n')
        journal = FleetJournal(path)
        fold = journal.fold()
        assert fold.unmatched == 1 and fold.skipped == 2
        assert not fold.jobs
        journal.close()

    def test_unknown_kind_rejected_on_append(self, tmp_path):
        journal = self._journal(tmp_path)
        with pytest.raises(FleetError, match="unknown journal record kind"):
            journal.append("martian", 0.0)
        journal.close()


# -- crash recovery -------------------------------------------------------------


class TestCrashRecovery:
    def test_live_job_requeues_at_last_checkpoint(self, tmp_path):
        fleet, path = journaled_fleet(tmp_path, n=2)
        # 6B = 2.0 s/iter: checkpoints land at t=6 (3 iters) on cadence 3.
        fleet.submit(job("a", iterations=10, checkpoint_every=3))
        # b's assign record at t=8.5 advances the journal clock past a's
        # checkpoint, so the fold sees a's fourth iteration complete.
        fleet.submit(job("b", submit_at=8.5))
        fleet.run_until(9.0)
        kill_minus_nine(fleet)
        del fleet

        recovered = Fleet.recover(path, stub_nodes(2), "fifo", oracle=StubOracle())
        state = recovered._jobs["a"]
        # 4 iterations had run by the last journaled instant (t=8.5), but
        # only 3 were checkpointed: one is redone, seven remain.
        assert state.checkpointed_iterations == 3
        assert state.remaining_iterations == 7
        assert state.lost_iterations == 1
        assert {s.spec.job_id for s in recovered._queue} == {"a", "b"}

        outcome = recovered.drain()
        assert all(r.completed for r in outcome.results)
        recovered.journal.close()

    def test_job_without_checkpoints_restarts_from_zero(self, tmp_path):
        fleet, path = journaled_fleet(tmp_path, n=2)
        fleet.submit(job("a", iterations=10))  # checkpoint_every=None
        fleet.submit(job("b", submit_at=8.5))  # assign record moves the clock
        fleet.run_until(9.0)
        kill_minus_nine(fleet)
        del fleet

        recovered = Fleet.recover(path, stub_nodes(2), "fifo", oracle=StubOracle())
        state = recovered._jobs["a"]
        assert state.remaining_iterations == 10
        assert state.lost_iterations == 4
        recovered.journal.close()

    def test_terminal_jobs_stay_terminal_exactly_once(self, tmp_path):
        fleet, path = journaled_fleet(tmp_path, n=1)
        fleet.submit(job("done", iterations=2))  # finishes at t=4
        fleet.submit(job("live", iterations=10, submit_at=5.0))
        fleet.run_until(8.0)
        assert fleet.result("done") is not None
        kill_minus_nine(fleet)
        del fleet

        recovered = Fleet.recover(path, stub_nodes(1), "fifo", oracle=StubOracle())
        result = recovered.result("done")
        assert result is not None and result.completed and result.node == "n0"
        outcome = recovered.drain()
        assert {r.spec.job_id for r in outcome.results} == {"done", "live"}
        # Exactly one terminal record per job across both fleet lives.
        probe = FleetJournal(path)
        counts = Counter(
            rec["job_id"]
            for rec in probe.records()
            if rec["rec"] in ("finish", "reject")
        )
        probe.close()
        recovered.journal.close()
        assert counts == {"done": 1, "live": 1}

    def test_torn_tail_repaired_before_first_append(self, tmp_path):
        fleet, path = journaled_fleet(tmp_path, n=1)
        fleet.submit(job("a", iterations=10))
        fleet.run_until(5.0)
        kill_minus_nine(fleet)
        del fleet

        recovered = Fleet.recover(path, stub_nodes(1), "fifo", oracle=StubOracle())
        assert recovered.journal.repaired_bytes == len(TORN)
        recovered.drain()
        probe = FleetJournal(path)
        records = probe.records()
        probe.close()
        recovered.journal.close()
        assert all(rec["rec"] for rec in records)  # every line parses again

    def test_recover_twice_yields_identical_fleets(self, tmp_path):
        fleet, path = journaled_fleet(tmp_path, scheduler="sjf")
        for i in range(4):
            fleet.submit(job(f"j{i}", iterations=8, checkpoint_every=2,
                             submit_at=float(i)))
        fleet.run_until(7.0)
        kill_minus_nine(fleet)
        del fleet

        first = Fleet.recover(path, stub_nodes(2), "sjf", oracle=StubOracle())
        second = Fleet.recover(path, stub_nodes(2), "sjf", oracle=StubOracle())
        assert first.snapshot() == second.snapshot()
        first.journal.close()
        second.journal.close()

    def test_priority_aging_clock_restored(self, tmp_path):
        # One slow job pins the single node; the queued jobs age.
        fleet, path = journaled_fleet(tmp_path, scheduler="priority", n=1)
        # 30B = 30 s/iter; checkpoint_every=1 journals at t=30/60/90, so
        # the recovered clock lands at 90 rather than stalling at zero.
        fleet.submit(job("hog", model="30B", iterations=10, priority=5,
                         checkpoint_every=1))
        fleet.submit(job("old", priority=0, submit_at=10.0))
        fleet.submit(job("new", priority=1, submit_at=90.0))
        fleet.run_until(100.0)
        queued_ids = {s.spec.job_id for s in fleet._queue}
        assert {"old", "new"} <= queued_ids
        kill_minus_nine(fleet)
        del fleet

        recovered = Fleet.recover(path, stub_nodes(1), "priority", oracle=StubOracle())
        scheduler = recovered.scheduler
        by_id = {s.spec.job_id: s for s in recovered._queue}
        # submitted_at survives recovery bit-exactly, so queue ages (and
        # with them the aged priorities) continue from real wall ages.
        assert by_id["old"].submitted_at == 10.0
        assert by_id["new"].submitted_at == 90.0
        clock = recovered.now
        assert clock == pytest.approx(90.0)
        assert scheduler.effective_priority(by_id["old"], clock) == pytest.approx(
            0 + scheduler.aging_rate * max(0.0, clock - 10.0)
        )
        assert scheduler.effective_priority(by_id["new"], clock) == pytest.approx(
            1 + scheduler.aging_rate * max(0.0, clock - 90.0)
        )
        recovered.journal.close()

    def test_rejected_jobs_survive_as_rejected(self, tmp_path):
        fleet, path = journaled_fleet(tmp_path)
        fleet.submit(job("pinned", hardware_class="nowhere"))
        fleet.run_until(1.0)
        assert fleet.result("pinned").state == "rejected"
        kill_minus_nine(fleet)
        del fleet

        recovered = Fleet.recover(path, stub_nodes(2), "fifo", oracle=StubOracle())
        result = recovered.result("pinned")
        assert result.state == "rejected" and result.node is None
        assert not recovered._queue
        recovered.journal.close()

    def test_node_health_reinstated(self, tmp_path):
        fleet, path = journaled_fleet(tmp_path, n=3)
        fleet.submit(job("a", iterations=10))
        fleet.inject(2.0, "n1", failed_ssds=1, bw_sag=0.5)
        fleet.inject_crash(3.0, "n2")
        fleet.run_until(5.0)
        kill_minus_nine(fleet)
        del fleet

        recovered = Fleet.recover(path, stub_nodes(3), "fifo", oracle=StubOracle())
        by_name = {node.name: node for node in recovered.nodes}
        assert by_name["n1"].failed_ssds == 1 and by_name["n1"].bw_sag == 0.5
        assert not by_name["n2"].alive and by_name["n2"].crash_times == [3.0]
        assert by_name["n0"].alive and not by_name["n0"].degraded
        recovered.journal.close()


# -- node fail-stop, flap, quarantine -------------------------------------------


class TestNodeFailStop:
    def test_crash_unseats_and_requeues_elsewhere(self, tmp_path):
        fleet = Fleet(stub_nodes(2), "fifo", oracle=StubOracle())
        fleet.submit(job("a", iterations=10, checkpoint_every=2))
        fleet.inject_crash(5.0, "n0")
        outcome = fleet.drain()
        result = outcome.results[0]
        assert result.completed and result.node == "n1"
        assert result.preemptions == 1 and result.migrations == 1
        requeues = [e for e in outcome.events if e.kind == "requeue"]
        assert requeues and "fail-stop" in requeues[0].detail
        assert outcome.metrics["node_crashes"] == 1

    def test_rollback_to_checkpoint_vs_full_restart(self, tmp_path):
        def run(checkpoint_every):
            fleet = Fleet(stub_nodes(1), "fifo", oracle=StubOracle())
            fleet.submit(job("a", iterations=10, checkpoint_every=checkpoint_every))
            # crash at t=5: 2 iterations done (t=4), partway into the 3rd
            fleet.inject_crash(5.0, "n0", rejoin_after=10.0)
            return fleet.drain().results[0]

        with_ckpt = run(2)  # checkpointed 2 at t=4 -> nothing past it lost
        without = run(None)  # no checkpoint -> both done iterations redone
        assert with_ckpt.lost_iterations == 0
        assert without.lost_iterations == 2
        assert with_ckpt.completed and without.completed
        assert with_ckpt.finished_at < without.finished_at

    def test_flap_trips_quarantine_and_restore_clears_it(self, tmp_path):
        fleet = Fleet(
            stub_nodes(2), "fifo", oracle=StubOracle(),
            flap_window=1000.0, flap_threshold=3,
        )
        NodeFaultSchedule(
            (NodeFlap(at=10.0, node="n0", cycles=3, down_s=5.0, up_s=20.0),)
        ).install(fleet)
        fleet.run_until(100.0)
        n0 = fleet._by_name["n0"]
        assert n0.quarantined and n0.alive  # back up, but not schedulable
        assert not n0.free
        assert sum(1 for e in fleet.events if e.kind == "quarantine") == 1

        fleet.inject(110.0, "n0", restore=True)
        fleet.run_until(120.0)
        assert not n0.quarantined and n0.crash_times == [] and n0.free

    def test_crashes_outside_flap_window_do_not_quarantine(self, tmp_path):
        fleet = Fleet(
            stub_nodes(2), "fifo", oracle=StubOracle(),
            flap_window=20.0, flap_threshold=2,
        )
        fleet.inject_crash(10.0, "n0", rejoin_after=5.0)
        fleet.inject_crash(100.0, "n0", rejoin_after=5.0)  # window expired
        fleet.run_until(200.0)
        assert not fleet._by_name["n0"].quarantined

    def test_double_crash_is_a_noop(self, tmp_path):
        fleet = Fleet(stub_nodes(2), "fifo", oracle=StubOracle())
        fleet.inject_crash(5.0, "n0")
        fleet.inject_crash(6.0, "n0")  # already down: swallowed
        fleet.run_until(10.0)
        assert fleet._by_name["n0"].crash_times == [5.0]

    def test_injection_validation(self):
        fleet = Fleet(stub_nodes(1), "fifo", oracle=StubOracle())
        with pytest.raises(FleetError, match="unknown node"):
            fleet.inject_crash(1.0, "ghost")
        with pytest.raises(FleetError, match="rejoin_after"):
            fleet.inject_crash(1.0, "n0", rejoin_after=0.0)
        with pytest.raises(FleetError, match="flap_threshold"):
            Fleet(stub_nodes(1), "fifo", oracle=StubOracle(), flap_threshold=1)
        with pytest.raises(FleetError, match="flap_window"):
            Fleet(stub_nodes(1), "fifo", oracle=StubOracle(), flap_window=0.0)


class TestNodeFaultSchedule:
    def test_flap_expands_to_crash_rejoin_pairs(self):
        flap = NodeFlap(at=100.0, node="x", cycles=2, down_s=10.0, up_s=20.0)
        crashes = flap.crashes()
        assert [c.at for c in crashes] == [100.0, 130.0]
        assert all(c.rejoin_after == 10.0 for c in crashes)

    def test_duplicate_event_rejected(self):
        crash = NodeCrash(at=5.0, node="x")
        with pytest.raises(FaultScheduleError, match="duplicate"):
            NodeFaultSchedule((crash, crash))

    def test_overlapping_dead_windows_rejected(self):
        with pytest.raises(FaultScheduleError, match="overlapping"):
            NodeFaultSchedule(
                (
                    NodeCrash(at=5.0, node="x", rejoin_after=100.0),
                    NodeCrash(at=50.0, node="x"),
                )
            )

    def test_crash_into_permanently_dead_node_rejected(self):
        with pytest.raises(FaultScheduleError, match="overlapping"):
            NodeFaultSchedule(
                (NodeCrash(at=5.0, node="x"), NodeCrash(at=500.0, node="x"))
            )

    def test_event_validation(self):
        with pytest.raises(FaultScheduleError):
            NodeCrash(at=-1.0, node="x")
        with pytest.raises(FaultScheduleError):
            NodeCrash(at=1.0, node="x", rejoin_after=-3.0)
        with pytest.raises(FaultScheduleError, match="cycles"):
            NodeFlap(at=1.0, node="x", cycles=1)


# -- the crash drill ------------------------------------------------------------


def drill_nodes():
    """Stub versions of the standard fleet (same names, cheap specs).

    Twelve SSDs so the standard degradation (4090 box loses 10 drives)
    stays in range.
    """
    server = evaluation_server(n_ssds=12)
    return [
        Node(name, server, RatelPolicy(), hardware_class=cls)
        for name, cls in (
            ("box-3090", "3090"),
            ("box-4080", "4080"),
            ("box-4090", "4090"),
            ("dgx-a100", "dgx"),
        )
    ]


class TestCrashDrill:
    SPEEDS = {"box-3090": 2.5, "box-4080": 1.8, "box-4090": 1.0, "dgx-a100": 0.4}

    def _run(self, mode, **kwargs):
        return run_crash_drill(
            "sjf",
            mode=mode,
            oracle=StubOracle(speeds=self.SPEEDS),
            nodes=drill_nodes(),
            **kwargs,
        )

    def test_resume_mode_loses_and_duplicates_nothing(self, tmp_path):
        report = self._run("resume", journal_path=str(tmp_path / "drill.jsonl"))
        assert report.passed
        assert report.lost_jobs == 0 and report.duplicated_jobs == 0
        assert report.journal_repaired_bytes > 0
        assert report.checkpoints > 0
        assert report.recovered_requeued >= 1
        assert report.pre_crash_completed < report.submitted

    def test_restart_redoes_at_least_as_much_as_resume(self, tmp_path):
        resume = self._run("resume")
        restart = self._run("restart")
        assert resume.passed and restart.passed
        assert resume.lost_iterations <= restart.lost_iterations
        assert restart.checkpoints == 0

    def test_no_journal_mode_reports_the_loss(self):
        report = self._run("no-journal", kill_at=900.0)
        assert report.lost_jobs > 0  # the baseline the journal exists to kill
        assert report.journal_records == 0
        assert math.isnan(report.makespan_s)

    def test_unknown_mode_rejected(self):
        with pytest.raises(FleetError, match="unknown crash-drill mode"):
            run_crash_drill("sjf", mode="optimistic")


# -- hypothesis properties ------------------------------------------------------

SCHEDULER_NAMES = ("fifo", "sjf", "priority", "binpack")


def crash_spec_strategy():
    models = st.sampled_from(["30B", "13B", "6B"])
    return st.builds(
        lambda i, model, iters, prio, submit, every: JobSpec(
            f"job-{i:03d}",
            model=model,
            batch_size={"30B": 32, "13B": 16, "6B": 8}[model],
            iterations=iters,
            priority=prio,
            submit_at=submit,
            checkpoint_every=every,
        ),
        st.integers(0, 10**6),
        models,
        st.integers(1, 15),
        st.integers(0, 5),
        st.floats(0.0, 300.0, allow_nan=False),
        st.sampled_from([None, 1, 2, 3]),
    )


crash_trace_strategy = st.lists(
    crash_spec_strategy(),
    min_size=1,
    max_size=8,
    unique_by=lambda spec: spec.job_id,
)


def _crash_and_recover(trace, scheduler, kill_at):
    """Run, kill -9 at ``kill_at``, recover on fresh nodes; returns
    (recovered fleet, drained outcome, journal path, tmp dir handle)."""
    tmp = tempfile.TemporaryDirectory()
    path = os.path.join(tmp.name, "journal.jsonl")
    fleet = Fleet(stub_nodes(2), scheduler, oracle=StubOracle(), journal=path)
    for spec in trace:
        fleet.submit(spec)
    fleet.run_until(kill_at)
    kill_minus_nine(fleet)
    del fleet
    recovered = Fleet.recover(path, stub_nodes(2), scheduler, oracle=StubOracle())
    outcome = recovered.drain()
    return recovered, outcome, path, tmp


@settings(max_examples=25, deadline=None)
@given(
    trace=crash_trace_strategy,
    scheduler=st.sampled_from(SCHEDULER_NAMES),
    kill_at=st.floats(0.0, 500.0, allow_nan=False),
)
def test_no_job_lost_or_doubled_across_crash(trace, scheduler, kill_at):
    """Conservation + exactly-once, under any trace, scheduler and kill
    instant: every submitted job ends in exactly one terminal state and
    the journal carries exactly one terminal record for it."""
    recovered, outcome, path, tmp = _crash_and_recover(trace, scheduler, kill_at)
    try:
        ids = {spec.job_id for spec in trace}
        assert {r.spec.job_id for r in outcome.results} == ids
        assert all(r.state in ("completed", "rejected") for r in outcome.results)
        probe = FleetJournal(path)
        terminals = Counter(
            rec["job_id"]
            for rec in probe.records()
            if rec["rec"] in ("finish", "reject")
        )
        probe.close()
        assert set(terminals) == ids
        assert all(count == 1 for count in terminals.values())
        assert probe.fold().duplicate_terminals == 0
    finally:
        recovered.journal.close()
        tmp.cleanup()


@settings(max_examples=15, deadline=None)
@given(
    trace=crash_trace_strategy,
    scheduler=st.sampled_from(SCHEDULER_NAMES),
    kill_at=st.floats(0.0, 500.0, allow_nan=False),
)
def test_recovery_is_idempotent(trace, scheduler, kill_at):
    """Replaying the same journal twice rebuilds identical fleets."""
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "journal.jsonl")
        fleet = Fleet(stub_nodes(2), scheduler, oracle=StubOracle(), journal=path)
        for spec in trace:
            fleet.submit(spec)
        fleet.run_until(kill_at)
        kill_minus_nine(fleet)
        del fleet
        first = Fleet.recover(path, stub_nodes(2), scheduler, oracle=StubOracle())
        second = Fleet.recover(path, stub_nodes(2), scheduler, oracle=StubOracle())
        try:
            assert first.snapshot() == second.snapshot()
        finally:
            first.journal.close()
            second.journal.close()


@settings(max_examples=15, deadline=None)
@given(
    trace=crash_trace_strategy,
    kill_at=st.floats(0.0, 500.0, allow_nan=False),
)
def test_checkpoints_bound_redone_work(trace, kill_at):
    """No recovered job loses more than ``checkpoint_every - 1`` full
    iterations *to the coordinator crash itself* plus the partial one in
    flight — the bound checkpoint cadence buys."""
    recovered, outcome, path, tmp = _crash_and_recover(trace, "fifo", kill_at)
    try:
        probe = FleetJournal(path)
        fold = probe.fold()
        probe.close()
        for spec in trace:
            jf = fold.jobs[spec.job_id]
            assert jf.checkpointed <= max(0, spec.iterations - 1)
            if spec.checkpoint_every is not None:
                # resume point never rolls back past one cadence + the
                # in-flight iteration from the last durable checkpoint
                assert jf.resume_iterations <= spec.iterations
    finally:
        recovered.journal.close()
        tmp.cleanup()
