"""Tests for the analytic Eq. 1-8 iteration-time model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    HardwareProfile,
    IterationTimeModel,
    ProfilingError,
    is_convex_on_grid,
    profile_hardware,
)
from repro.hardware import GB, TFLOPS, evaluation_server, GiB
from repro.models import llm, profile_model


def make_model(batch=32, name="13B", mem_avail=200 * GB, **overrides) -> IterationTimeModel:
    hw = HardwareProfile(
        thp_gpu=overrides.get("thp_gpu", 165 * TFLOPS),
        bw_gpu=overrides.get("bw_gpu", 21 * GB),
        bw_s2m=overrides.get("bw_s2m", 32 * GB),
        bw_m2s=overrides.get("bw_m2s", 32 * GB),
        mem_avail_main=mem_avail,
        cpu_adam_params_per_s=overrides.get("cpu", 1.3e9),
    )
    return IterationTimeModel(profile_model(llm(name), batch), hw)


class TestProfiling:
    def test_profile_hardware_reads_spec(self, server):
        hw = profile_hardware(server)
        assert hw.thp_gpu == server.gpu.peak_fp16_flops
        assert hw.bw_gpu == pytest.approx(21 * GB)
        assert hw.bw_s2m == pytest.approx(32 * GB)
        assert hw.mem_avail_main == pytest.approx(server.usable_main_memory_bytes)

    def test_overhead_reduces_activation_budget(self, server):
        hw = profile_hardware(server, main_memory_overhead=100 * GB)
        assert hw.mem_avail_main == pytest.approx(
            server.usable_main_memory_bytes - 100 * GB
        )

    def test_excessive_overhead_clamps_to_zero(self, server):
        hw = profile_hardware(server, main_memory_overhead=10_000 * GB)
        assert hw.mem_avail_main == 0.0

    def test_negative_overhead_rejected(self, server):
        with pytest.raises(ProfilingError):
            profile_hardware(server, main_memory_overhead=-1.0)

    def test_invalid_profile_rejected(self):
        with pytest.raises(ProfilingError):
            HardwareProfile(0, 1, 1, 1, 0, 1)


class TestSpill:
    def test_no_spill_under_budget(self):
        model = make_model(mem_avail=500 * GB)
        assert model.a_to_ssd(100 * GB) == 0.0

    def test_spill_is_excess_over_budget(self):
        model = make_model(mem_avail=50 * GB)
        assert model.a_to_ssd(80 * GB) == pytest.approx(30 * GB)

    def test_negative_a_rejected(self):
        with pytest.raises(ValueError):
            make_model().a_to_ssd(-1.0)

    def test_a_beyond_total_rejected(self):
        model = make_model()
        with pytest.raises(ValueError):
            model.iteration_time(model.model.activation_bytes_total * 2)


class TestEquations:
    def test_forward_components_match_eq4(self):
        """Hand-evaluate Eq. 4 for a known point."""
        model = make_model(batch=32, mem_avail=100 * GB)
        a = 120 * GB
        stage = model.forward_time(a)
        p16 = model.model.states.p16
        assert stage.components["pcie_g2m"] == pytest.approx(a / (21 * GB))
        assert stage.components["pcie_m2g"] == pytest.approx(p16 / (21 * GB))
        spill = a - 100 * GB
        assert stage.components["ssd"] == pytest.approx(
            p16 / (32 * GB) + spill / (32 * GB)
        )
        assert stage.total == max(stage.components.values())

    def test_backward_components_match_eq5(self):
        model = make_model(batch=32, mem_avail=100 * GB)
        a = model.model.inter_block_bytes
        stage = model.backward_time(a)
        states = model.model.states
        assert stage.components["pcie_g2m"] == pytest.approx(states.g16 / (21 * GB))
        assert stage.components["pcie_m2g"] == pytest.approx(
            (states.p16 + a) / (21 * GB)
        )
        # 14P read (12P states + 2P P16) and 14P written.
        assert stage.components["ssd"] == pytest.approx(
            (states.optimizer_read + states.p16) / (32 * GB)
            + states.optimizer_write / (32 * GB)
        )

    def test_iteration_is_sum_of_stages(self):
        model = make_model()
        a = model.model.inter_block_bytes
        assert model.iteration_time(a) == pytest.approx(
            model.forward_time(a).total + model.backward_time(a).total
        )

    def test_cpu_adam_shorter_than_state_io(self):
        """The paper's §IV-D assumption must hold on the calibrated server."""
        model = make_model(batch=32)
        stage = model.backward_time(model.model.inter_block_bytes)
        assert stage.components["cpu_adam"] < stage.components["ssd"]

    def test_occupancy_discounts_gpu_time(self):
        small = make_model(batch=1)
        large = make_model(batch=64)
        assert small.effective_thp < large.effective_thp

    def test_stage_bottleneck_and_utilization(self):
        model = make_model(batch=64)
        stage = model.backward_time(model.model.inter_block_bytes)
        assert stage.components[stage.bottleneck] == pytest.approx(stage.total)
        assert stage.utilization(stage.bottleneck) == pytest.approx(1.0)

    def test_no_ssd_server_rejects_ssd_traffic(self):
        model = make_model()
        object.__setattr__(model.hardware, "bw_s2m", 0.0)
        with pytest.raises(ValueError):
            model.backward_time(model.model.inter_block_bytes)


class TestConvexity:
    """The paper's §IV-D proof, checked numerically (Theorems 1-4)."""

    def test_paper_configuration_is_convex(self):
        assert is_convex_on_grid(make_model(batch=32))

    @given(
        batch=st.sampled_from([8, 16, 24, 32, 48, 64]),
        mem_gb=st.floats(min_value=10, max_value=800),
        bw_gpu=st.floats(min_value=5, max_value=64),
        bw_ssd=st.floats(min_value=2, max_value=64),
        thp=st.floats(min_value=30, max_value=400),
    )
    @settings(max_examples=40, deadline=None)
    def test_convex_for_arbitrary_hardware(self, batch, mem_gb, bw_gpu, bw_ssd, thp):
        model = make_model(
            batch=batch,
            mem_avail=mem_gb * GB,
            bw_gpu=bw_gpu * GB,
            bw_s2m=bw_ssd * GB,
            bw_m2s=bw_ssd * GB,
            thp_gpu=thp * TFLOPS,
        )
        assert is_convex_on_grid(model)

    def test_convex_for_other_models(self):
        for name in ("6B", "30B", "70B"):
            assert is_convex_on_grid(make_model(batch=16, name=name))
