"""Tests for the append-only JSONL run ledger (:mod:`repro.obs.ledger`)."""

from __future__ import annotations

import json

import pytest

from repro.core import RatelPolicy
from repro.hardware import EVALUATION_SERVER
from repro.models import llm
from repro.obs.ledger import (
    LedgerEntry,
    LedgerError,
    RunLedger,
    current_git_sha,
    entry_from_outcome,
    hardware_payload,
    load_ledger,
)
from repro.runner import Sweep


@pytest.fixture(scope="module")
def outcome():
    """One computed evaluation (module-scoped: the sim run is the cost)."""
    return Sweep().evaluate(RatelPolicy(), llm("13B"), 8, EVALUATION_SERVER)


class TestLedgerEntry:
    def test_round_trip(self, outcome, server):
        entry = entry_from_outcome(
            outcome,
            label="evaluate:Ratel/13B/b8@test",
            config_key="abc123",
            server=server,
            source="test",
        )
        clone = LedgerEntry.from_payload(json.loads(json.dumps(entry.to_payload())))
        assert clone == entry
        assert clone.iteration_time == pytest.approx(outcome.iteration_time)
        assert clone.tokens_per_s == pytest.approx(outcome.tokens_per_s)

    def test_embeds_attribution(self, outcome, server):
        entry = entry_from_outcome(outcome, server=server)
        report = entry.attribution()
        assert report is not None
        assert {stage.stage for stage in report.stages} >= {"forward", "backward"}
        assert report.iteration_time == pytest.approx(outcome.iteration_time)

    def test_provenance_fields(self, outcome, server):
        entry = entry_from_outcome(outcome, server=server)
        assert entry.git_sha == current_git_sha()
        assert entry.hardware == hardware_payload(server)
        assert entry.hardware["gpu"] == "RTX 4090"
        assert entry.timestamp  # ISO stamp, non-empty
        assert not entry.cached

    def test_default_label_matches_sweep_point_form(self, outcome, server):
        entry = entry_from_outcome(outcome, server=server)
        assert entry.label == f"evaluate:Ratel/13B/b8@{server.name}"

    def test_rejects_non_entries(self):
        with pytest.raises(LedgerError):
            LedgerEntry.from_payload({"traceEvents": []})


class TestRunLedger:
    def _entry(self, label: str, iteration: float) -> LedgerEntry:
        return LedgerEntry(
            label=label,
            policy="Ratel",
            model="13B",
            batch_size=8,
            server="test",
            feasible=True,
            metrics={"iteration_time": iteration},
        )

    def test_append_and_read_in_order(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
        ledger.append(self._entry("a", 1.0))
        ledger.append(self._entry("b", 2.0))
        assert [entry.label for entry in ledger.entries()] == ["a", "b"]
        assert len(ledger) == 2

    def test_creates_parent_directory(self, tmp_path):
        path = tmp_path / "nested" / "deep" / "ledger.jsonl"
        RunLedger(str(path)).append(self._entry("a", 1.0))
        assert path.exists()

    def test_tolerates_corrupt_lines(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(str(path))
        ledger.append(self._entry("good", 1.0))
        with open(path, "a") as handle:
            handle.write("not json at all\n")
            handle.write('{"foreign": "object"}\n')
        ledger.append(self._entry("also-good", 2.0))
        entries = ledger.entries()
        assert [entry.label for entry in entries] == ["good", "also-good"]
        assert ledger.skipped == 2

    def test_last_and_label_filter(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
        ledger.append(self._entry("a", 1.0))
        ledger.append(self._entry("b", 2.0))
        ledger.append(self._entry("a", 3.0))
        assert ledger.last().metrics["iteration_time"] == 3.0
        assert ledger.last("b").metrics["iteration_time"] == 2.0
        assert ledger.last("zzz") is None

    def test_latest_by_label(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
        ledger.append(self._entry("a", 1.0))
        ledger.append(self._entry("a", 4.0))
        ledger.append(self._entry("b", 2.0))
        latest = ledger.latest_by_label()
        assert set(latest) == {"a", "b"}
        assert latest["a"].metrics["iteration_time"] == 4.0

    def test_empty_ledger_reads_empty(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "missing.jsonl"))
        assert ledger.entries() == []
        assert ledger.last() is None

    def test_load_ledger_requires_file(self, tmp_path):
        with pytest.raises(LedgerError):
            load_ledger(str(tmp_path / "absent.jsonl"))

    def test_truncated_tail_skipped_with_counter(self, tmp_path):
        """A crash mid-append leaves a torn last line; reads survive it."""
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(str(path))
        ledger.append(self._entry("good", 1.0))
        with open(path, "a") as handle:
            handle.write('{"label": "torn", "pol')  # no trailing newline
        entries = ledger.entries()
        assert [entry.label for entry in entries] == ["good"]
        assert ledger.truncated_tail == 1
        assert ledger.skipped == 0  # torn tail is not interior corruption

    def test_truncated_interior_line_counts_as_skipped(self, tmp_path):
        """Only the *final* incomplete line is a torn tail."""
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(str(path))
        ledger.append(self._entry("a", 1.0))
        with open(path, "a") as handle:
            handle.write('{"half\n')  # complete line, corrupt content
        ledger.append(self._entry("b", 2.0))
        assert [entry.label for entry in ledger.entries()] == ["a", "b"]
        assert ledger.skipped == 1
        assert ledger.truncated_tail == 0

    def test_fsync_append_round_trips(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger.jsonl"), fsync=True)
        assert ledger.fsync
        ledger.append(self._entry("durable", 1.0))
        assert [entry.label for entry in ledger.entries()] == ["durable"]


class TestSweepRecording:
    def test_records_computed_not_cached(self, tmp_path, server):
        path = str(tmp_path / "ledger.jsonl")
        sweep = Sweep(ledger=path)
        first = sweep.evaluate(RatelPolicy(), llm("13B"), 8, server)
        again = sweep.evaluate(RatelPolicy(), llm("13B"), 8, server)
        assert first.feasible and again.feasible
        entries = RunLedger(path).entries()
        assert len(entries) == 1  # the cache hit is not re-recorded
        entry = entries[0]
        assert entry.source == "runner"
        assert entry.label == f"evaluate:Ratel/13B/b8@{server.name}"
        assert entry.config_key  # the runner's content key rides along
        assert entry.attribution() is not None

    def test_string_path_is_wrapped(self, tmp_path):
        sweep = Sweep(ledger=str(tmp_path / "ledger.jsonl"))
        assert isinstance(sweep.ledger, RunLedger)

    def test_non_evaluate_points_not_recorded(self, tmp_path, server):
        path = str(tmp_path / "ledger.jsonl")
        sweep = Sweep(ledger=path)
        sweep.max_batch(RatelPolicy(), llm("13B"), server)
        assert RunLedger(path).entries() == []
