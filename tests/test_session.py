"""Tests for ``repro.session``: scoped ledger + observe + health wiring."""

from __future__ import annotations

import pytest

from repro import runner
from repro.core import RatelPolicy
from repro.hardware import evaluation_server
from repro.models import llm
from repro.obs import spans
from repro.obs.ledger import RunLedger, load_ledger
from repro.session import Session, SessionError, attach_ledger


class FakeRuntime:
    def __init__(self):
        self.health = "unset"

    def attach_health(self, health):
        self.health = health


class FakeHealth:
    def clock(self):
        return 0.0

    def on_step(self, runtime, dt):
        pass


class TestAttachLedger:
    def test_attaches_to_default_sweep(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        try:
            ledger = attach_ledger(path)
            assert isinstance(ledger, RunLedger)
            assert runner.default_sweep().ledger is ledger
        finally:
            runner.reset()

    def test_experiments_helper_delegates_here(self, tmp_path):
        from repro.experiments.common import attach_ledger as legacy

        path = str(tmp_path / "runs.jsonl")
        try:
            ledger = legacy(path)
            assert runner.default_sweep().ledger is ledger
        finally:
            runner.reset()

    def test_explicit_sweep_target(self, tmp_path):
        sweep = runner.Sweep()
        ledger = attach_ledger(str(tmp_path / "runs.jsonl"), sweep=sweep)
        assert sweep.ledger is ledger
        assert runner.default_sweep().ledger is None
        runner.reset()


class TestSessionLifecycle:
    def test_ledger_attached_then_restored(self, tmp_path):
        sweep = runner.Sweep()
        previous = RunLedger(str(tmp_path / "before.jsonl"))
        sweep.ledger = previous
        with Session(ledger=str(tmp_path / "during.jsonl"), sweep=sweep) as session:
            assert sweep.ledger is session.ledger
            assert sweep.ledger is not previous
        assert sweep.ledger is previous

    def test_ledger_records_computed_evaluations(self, tmp_path):
        path = str(tmp_path / "during.jsonl")
        sweep = runner.Sweep()
        with Session(ledger=path, sweep=sweep):
            sweep.evaluate(RatelPolicy(), llm("6B"), 8, evaluation_server())
        [entry] = load_ledger(path).entries()
        assert entry.model == "6B"

    def test_observe_recorder_scoped_to_block(self):
        assert spans.recorder() is None
        with Session(observe=True) as session:
            assert session.recorder is not None
            assert spans.recorder() is session.recorder
        assert spans.recorder() is None

    def test_nested_recorder_restored(self):
        with Session(observe=True) as outer:
            with Session(observe=True) as inner:
                assert spans.recorder() is inner.recorder
            assert spans.recorder() is outer.recorder

    def test_bind_attaches_and_detaches_health(self):
        runtime = FakeRuntime()
        health = FakeHealth()
        with Session() as session:
            assert session.bind(runtime, health) is runtime
            assert runtime.health is health
        assert runtime.health is None

    def test_bind_outside_block_raises(self):
        session = Session()
        with pytest.raises(SessionError):
            session.bind(FakeRuntime(), FakeHealth())

    def test_not_reentrant(self):
        session = Session()
        with session:
            with pytest.raises(SessionError):
                session.__enter__()
        # ...but reusable sequentially after a clean exit.
        with session:
            pass

    def test_record_requires_ledger(self):
        with Session() as session:
            with pytest.raises(SessionError):
                session.record(object())

    def test_exit_clears_handles(self, tmp_path):
        session = Session(ledger=str(tmp_path / "l.jsonl"), observe=True)
        with session:
            pass
        assert session.ledger is None and session.recorder is None
        assert not session.active

    def test_real_runtime_bind_round_trip(self):
        from repro.runtime import GPTModel, RatelOptimizer, ratel_hook, ratel_init

        import numpy as np

        GB = 1e9
        with ratel_init(
            gpu_capacity=1 * GB,
            host_capacity=4 * GB,
            nvme_capacity=4 * GB,
            checkpoint_tier="host",
            states_tier="host",
        ):
            model = GPTModel(53, 32, 2, 4, 16, np.random.default_rng(0))
            runtime = ratel_hook(model)
            RatelOptimizer(model, runtime, lr=1e-2)
        health = FakeHealth()
        with Session() as session:
            session.bind(runtime, health)
            assert runtime._health is health
        assert runtime._health is None
