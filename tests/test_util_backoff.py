"""The shared retry/backoff helper (repro.util.backoff).

Storage spill I/O, the sweep runner and the planner service all retry
through this one vocabulary, so its schedule arithmetic and its loop
semantics are pinned here: exponential growth, the cap, full-jitter
bounds, bounded attempts, and the final-failure re-raise contract.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.util import BackoffError, BackoffPolicy, retry_call


class TestBackoffPolicy:
    def test_unjittered_delays_grow_exponentially(self):
        policy = BackoffPolicy(base_s=0.1, factor=2.0, max_attempts=4, jitter="none")
        assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.4])

    def test_max_delay_caps_the_schedule(self):
        policy = BackoffPolicy(
            base_s=1.0, factor=10.0, max_attempts=5, jitter="none", max_delay_s=3.0
        )
        assert list(policy.delays()) == pytest.approx([1.0, 3.0, 3.0, 3.0])

    def test_single_attempt_policy_never_sleeps(self):
        policy = BackoffPolicy(max_attempts=1, jitter="none")
        assert policy.retries == 0
        assert list(policy.delays()) == []

    @given(attempt=st.integers(min_value=0, max_value=20), seed=st.integers())
    def test_full_jitter_is_bounded_by_the_raw_delay(self, attempt, seed):
        policy = BackoffPolicy(base_s=0.01, factor=2.0, max_attempts=30, jitter="full")
        delay = policy.delay(attempt, random.Random(seed))
        assert 0.0 <= delay <= policy.raw_delay(attempt)

    def test_seeded_jitter_is_reproducible(self):
        policy = BackoffPolicy(base_s=0.5, max_attempts=6)
        a = list(policy.delays(random.Random(7)))
        b = list(policy.delays(random.Random(7)))
        assert a == b

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_s": -1.0},
            {"factor": 0.5},
            {"max_attempts": 0},
            {"jitter": "half"},
            {"max_delay_s": -0.1},
        ],
    )
    def test_malformed_policies_rejected(self, kwargs):
        with pytest.raises(BackoffError):
            BackoffPolicy(**kwargs)

    def test_negative_attempt_rejected(self):
        with pytest.raises(BackoffError):
            BackoffPolicy().raw_delay(-1)


class TestRetryCall:
    def _flaky(self, failures, exc=OSError):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= failures:
                raise exc(f"boom {calls['n']}")
            return calls["n"]

        return fn, calls

    def test_succeeds_after_transient_failures(self):
        fn, calls = self._flaky(2)
        slept = []
        policy = BackoffPolicy(base_s=0.1, max_attempts=4, jitter="none")
        result = retry_call(fn, policy=policy, what="flaky", sleep=slept.append)
        assert result == 3
        assert calls["n"] == 3
        assert slept == pytest.approx([0.1, 0.2])

    def test_exhaustion_reraises_the_last_failure(self):
        fn, calls = self._flaky(10)
        policy = BackoffPolicy(base_s=0.0, max_attempts=3, jitter="none")
        with pytest.raises(OSError, match="boom 3"):
            retry_call(fn, policy=policy, what="flaky", sleep=lambda _: None)
        assert calls["n"] == 3

    def test_unlisted_exceptions_propagate_immediately(self):
        fn, calls = self._flaky(1, exc=KeyError)
        policy = BackoffPolicy(max_attempts=5, jitter="none")
        with pytest.raises(KeyError):
            retry_call(fn, policy=policy, what="flaky", sleep=lambda _: None)
        assert calls["n"] == 1

    def test_on_retry_hook_sees_each_failed_attempt(self):
        fn, _ = self._flaky(2)
        seen = []
        policy = BackoffPolicy(base_s=0.0, max_attempts=4, jitter="none")
        retry_call(
            fn,
            policy=policy,
            what="flaky",
            sleep=lambda _: None,
            on_retry=lambda attempt, exc: seen.append((attempt, str(exc))),
        )
        assert seen == [(1, "boom 1"), (2, "boom 2")]

    def test_custom_retry_on_types(self):
        fn, calls = self._flaky(1, exc=RuntimeError)
        policy = BackoffPolicy(base_s=0.0, max_attempts=3, jitter="none")
        result = retry_call(
            fn,
            policy=policy,
            what="flaky",
            retry_on=(RuntimeError,),
            sleep=lambda _: None,
        )
        assert result == 2
        assert calls["n"] == 2
