"""The chaos drill end to end (repro.serve.chaos + experiments.ext_serve).

One real run in a scratch directory: every SLO must hold — explicit
shedding only, degraded-but-answered during the crash, bounded latency
under the wedge, breaker recovery, balanced journal accounting across
the simulated kill -9.
"""

from __future__ import annotations

import pytest

from repro.serve import run_chaos_drill


@pytest.fixture(scope="module")
def drill(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("serve-drill"))
    return root, run_chaos_drill(root, seed=3)


@pytest.fixture(scope="module")
def report(drill):
    return drill[1]


def test_drill_passes_all_slos(report):
    assert report.passed, "; ".join(report.violations)


def test_phases_run_in_order(report):
    names = [phase.name for phase in report.phases]
    assert names == ["warmup", "flood", "crash", "slow", "recover", "restart"]


def test_flood_sheds_explicitly(report):
    flood = report.phase("flood")
    assert flood.sent == 48
    assert set(flood.statuses) <= {200, 429, 503}
    assert flood.statuses.get(429, 0) + flood.statuses.get(503, 0) > 0


def test_crash_degrades_instead_of_500(report):
    crash = report.phase("crash")
    assert all(status < 500 or status == 503 for status in crash.statuses)
    degraded = crash.rungs.get("neighbor", 0) + crash.rungs.get("analytic", 0)
    assert degraded > 0


def test_breaker_arc_covers_open_and_closed(report):
    assert "open" in report.breaker_states
    assert report.breaker_states[-1] == "closed"


def test_journal_accounting_balances_across_restart(report):
    journal = report.journal
    assert journal["orphans_after_recovery"] == 0
    assert journal["duplicate_terminals"] == 0
    assert journal["accepted"] == journal["done"] + journal["failed"]
    assert journal["torn_tail_repaired_bytes"] > 0
    assert report.replayed == 1


def test_cache_corruption_caught(report):
    assert report.cache_corrupt_detected > 0


def test_report_payload_is_json_shaped(report):
    payload = report.to_payload()
    assert payload["passed"] is True
    assert len(payload["phases"]) == 6
    assert payload["wall_s"] > 0


def test_ext_serve_experiment_renders(report):
    # The experiment harness reuses the drill; just check the table shape
    # on the module-scoped report rather than re-running the drill.
    from repro.experiments import ext_serve

    results = ext_serve.run(seed=5)
    assert len(results) == 2
    scoreboard, audit = results
    assert scoreboard.experiment == "ext_serve"
    rendered = audit.render()
    assert "drill verdict" in rendered
    assert "FAIL" not in rendered


def test_drill_trace_retrieves_ledger_records(drill):
    # The acceptance round trip: the drill surfaces the causal trace of
    # its first request, and that single trace_id pulls the matching
    # serve records back out of the drill's own ledger.
    import io
    import os

    from repro.cli import main

    root, report = drill
    assert len(report.sample_trace_id) == 32
    out = io.StringIO()
    code = main(
        [
            "obs", "report",
            "--trace-id", report.sample_trace_id,
            "--ledger", os.path.join(root, "serve-ledger.jsonl"),
        ],
        out=out,
    )
    text = out.getvalue()
    assert code == 0, text
    assert "ledger record(s)" in text
    assert "[serve" in text
