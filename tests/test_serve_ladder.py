"""The answer-degradation ladder (repro.serve.ladder).

The contract the hypothesis property pins: within one overload episode
the fidelity floor never moves back up — every answer in an episode is
served at or below (in fidelity) the episode's running floor, and only
a reset (episode end) restores exact answers.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve import RUNGS, DegradationLadder, rung_index, rung_name


class TestRungNames:
    def test_round_trip(self):
        for index, name in enumerate(RUNGS):
            assert rung_index(name) == index
            assert rung_name(index) == name

    def test_unknown_rung_rejected(self):
        with pytest.raises(ValueError, match="unknown rung"):
            rung_index("vibes")
        with pytest.raises(ValueError, match="out of range"):
            rung_name(len(RUNGS))


class TestLadderBasics:
    def test_resolve_clamps_to_the_floor(self):
        ladder = DegradationLadder()
        assert ladder.resolve(rung_index("exact")) == rung_index("exact")
        ladder.escalate(rung_index("analytic"))
        assert ladder.resolve(rung_index("exact")) == rung_index("analytic")
        assert ladder.resolve(rung_index("unavailable")) == rung_index("unavailable")

    def test_escalate_never_lowers(self):
        ladder = DegradationLadder()
        ladder.escalate(rung_index("analytic"))
        assert ladder.escalate(rung_index("neighbor")) == rung_index("analytic")
        assert ladder.floor == rung_index("analytic")

    def test_reset_ends_the_episode(self):
        ladder = DegradationLadder()
        assert not ladder.reset()  # nothing to clear
        ladder.escalate(rung_index("neighbor"))
        assert ladder.degraded
        assert ladder.reset()
        assert ladder.floor == rung_index("exact")
        assert ladder.episode == 1

    def test_out_of_range_escalation_rejected(self):
        with pytest.raises(ValueError):
            DegradationLadder().escalate(len(RUNGS))


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("resolve"), st.integers(0, len(RUNGS) - 1)),
        st.tuples(st.just("escalate"), st.integers(0, len(RUNGS) - 1)),
        st.tuples(st.just("reset"), st.just(0)),
    ),
    max_size=60,
)


class TestLadderMonotonicity:
    @given(ops=OPS)
    @settings(max_examples=300, deadline=None)
    def test_floor_is_monotone_within_an_episode(self, ops):
        ladder = DegradationLadder()
        for op, rung in ops:
            if op == "resolve":
                ladder.resolve(rung)
            elif op == "escalate":
                ladder.escalate(rung)
            else:
                ladder.reset()
        last_floor: dict[int, int] = {}
        for episode, served, floor in ladder.history:
            # Served fidelity is never better than the episode floor.
            assert served >= floor
            # The floor never decreases while the episode lasts.
            if episode in last_floor:
                assert floor >= last_floor[episode]
            last_floor[episode] = floor
        # Episodes are entered in order, each starting back at exact.
        episodes = [episode for episode, _, _ in ladder.history]
        assert episodes == sorted(episodes)
        first_floor: dict[int, int] = {}
        for episode, _, floor in ladder.history:
            first_floor.setdefault(episode, floor)
