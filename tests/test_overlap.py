"""The stall-free optimizer engine (repro.overlap): sim, queue, runtime.

Three layers under test:

* the :mod:`repro.baselines.overlap` sim policies (ZenFlow /
  GreedySnake) must reshape Ratel's own plan and *beat* the synchronous
  schedule's predicted iteration time;
* the :class:`repro.runtime.BoundedStalenessQueue` must enforce the
  bounded-staleness invariant for any push/collect interleaving
  (Hypothesis-driven);
* :class:`repro.runtime.RatelRuntime` under ``optimizer_mode`` must be
  bit-identical to sync for K=0 async and for overlap, and report the
  measured staleness for K>=1.

Plus the NumPy-reference bit-exactness tests for the CPU Adam that the
bounded-staleness equivalences stand on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import GreedySnakePolicy, ZenFlowPolicy, policy_for_mode
from repro.core import RatelPolicy
from repro.core.schedule import OptimizerMode
from repro.hardware import evaluation_server
from repro.models import llm, profile_model
from repro.runtime import (
    Adam,
    BoundedStalenessQueue,
    CPUAdam,
    CrossEntropyLoss,
    GPTModel,
    OptimizerError,
    RatelOptimizer,
    StorageManager,
    Tensor,
    gradient_importance,
    ratel_hook,
    ratel_init,
)

GB = 1e9


# -- sim policies ----------------------------------------------------------------


class TestOverlapPolicies:
    @pytest.fixture(scope="class")
    def times(self):
        profile = profile_model(llm("13B"), batch_size=8)
        server = evaluation_server()
        return {
            name: policy.evaluate(profile, server).iteration_time
            for name, policy in (
                ("sync", RatelPolicy()),
                ("async", ZenFlowPolicy()),
                ("overlap", GreedySnakePolicy()),
            )
        }

    def test_async_beats_sync(self, times):
        assert times["async"] < times["sync"]

    def test_overlap_beats_sync(self, times):
        assert times["overlap"] < times["sync"]

    def test_async_beats_overlap(self, times):
        # ZenFlow hides the optimizer under fwd+bwd, GreedySnake only
        # under fwd — bounded staleness buys strictly more overlap.
        assert times["async"] < times["overlap"]

    def test_schedules_reshape_ratels_plan(self):
        profile = profile_model(llm("13B"), batch_size=8)
        server = evaluation_server()
        sync = RatelPolicy().compile(profile, server)
        zen = ZenFlowPolicy(stale_k=3, critical_frac=0.1).compile(profile, server)
        snake = GreedySnakePolicy().compile(profile, server)
        assert zen.optimizer_mode is OptimizerMode.ASYNC_BOUNDED
        assert zen.stale_k == 3 and zen.critical_frac == 0.1
        assert snake.optimizer_mode is OptimizerMode.OVERLAP_STEP
        # Algorithm 1's plan is untouched: same blocks, same locations.
        assert zen.blocks == sync.blocks and snake.blocks == sync.blocks
        assert zen.states_location is sync.states_location

    def test_pending_gradients_cost_host_memory(self):
        profile = profile_model(llm("13B"), batch_size=8)
        server = evaluation_server()
        base = RatelPolicy().memory_needs(profile, server).main_bytes
        assert ZenFlowPolicy().memory_needs(profile, server).main_bytes > base
        assert GreedySnakePolicy().memory_needs(profile, server).main_bytes > base
        # K=0 defers nothing, so nothing accumulates host-side.
        assert ZenFlowPolicy(stale_k=0).memory_needs(profile, server).main_bytes == base

    def test_policy_for_mode(self):
        assert isinstance(policy_for_mode("sync"), RatelPolicy)
        assert isinstance(policy_for_mode("async"), ZenFlowPolicy)
        assert policy_for_mode("async", stale_k=5).stale_k == 5
        assert isinstance(policy_for_mode("overlap"), GreedySnakePolicy)
        with pytest.raises(ValueError):
            policy_for_mode("turbo")

    def test_validation(self):
        with pytest.raises(ValueError):
            ZenFlowPolicy(stale_k=-1)
        with pytest.raises(ValueError):
            ZenFlowPolicy(critical_frac=1.0)


# -- NumPy-reference bit-exactness for the CPU Adam --------------------------------


def reference_adam(w, g, m, v, step, lr, b1=0.9, b2=0.999, eps=1e-8, wd=0.0):
    """The exact op sequence of Adam._update, all in ``w``'s dtype."""
    g = g.astype(w.dtype, copy=False)
    m = (m * b1) + (1 - b1) * g
    v = (v * b2) + (1 - b2) * g**2
    m_hat = m / (1 - b1**step)
    v_hat = v / (1 - b2**step)
    if wd:
        w = w - lr * wd * w
    w = w - lr * m_hat / (np.sqrt(v_hat) + eps)
    return w, m, v


class TestAdamBitExact:
    @pytest.mark.parametrize("grad_dtype", [np.float16, np.float32, np.float64])
    def test_adam_matches_reference_bitwise(self, rng, grad_dtype):
        """Adam must track the reference exactly across grad dtypes and steps.

        This pinned down a real drift: the update used the raw gradient,
        so a float16 grad evaluated (1-beta1)*g at half precision instead
        of upcasting first the way CPUAdam does.  (Parameters are always
        fp32 — Tensor normalizes storage to float32.)
        """
        w = rng.normal(size=(32,)).astype(np.float32)
        param = Tensor(w.copy(), requires_grad=True)
        opt = Adam([("w", param)], lr=1e-2)
        m = np.zeros_like(w)
        v = np.zeros_like(w)
        for step in range(1, 8):
            grad = rng.normal(size=(32,)).astype(grad_dtype)
            param.grad = grad.copy()
            opt.step()
            w, m, v = reference_adam(w, grad, m, v, step, lr=1e-2)
            np.testing.assert_array_equal(param.data, w)

    def test_cpu_adam_matches_reference_bitwise(self, rng, tmp_path):
        """The out-of-core pipeline (fp32 states, p16 round-trip), exactly."""
        manager = StorageManager(10**7, 10**7, 10**8, spill_dir=str(tmp_path))
        w0 = rng.normal(size=(64,)).astype(np.float32)
        param = Tensor(w0.copy(), requires_grad=True)
        opt = CPUAdam([("w", param)], manager, lr=5e-3)
        w = w0.copy()
        m = np.zeros_like(w)
        v = np.zeros_like(w)
        for step in range(1, 6):
            grad16 = rng.normal(size=(64,)).astype(np.float16).astype(np.float32)
            fresh = opt.step_param("w", grad16)
            w, m, v = reference_adam(w, grad16, m, v, step, lr=5e-3)
            np.testing.assert_array_equal(opt.master_weights("w"), w)
            np.testing.assert_array_equal(fresh, w.astype(np.float16).astype(np.float32))

    def test_adam_and_cpu_adam_agree_on_fp32_grads(self, rng, tmp_path):
        """Same grads, same fp32 math: the two implementations are twins."""
        manager = StorageManager(10**7, 10**7, 10**8, spill_dir=str(tmp_path))
        w0 = rng.normal(size=(48,)).astype(np.float32)
        ref_param = Tensor(w0.copy(), requires_grad=True)
        in_core = Adam([("w", ref_param)], lr=1e-2)
        out_of_core = CPUAdam(
            [("w", Tensor(w0.copy(), requires_grad=True))], manager, lr=1e-2
        )
        for _step in range(5):
            grad = rng.normal(size=(48,)).astype(np.float32)
            ref_param.grad = grad.copy()
            in_core.step()
            out_of_core.step_param("w", grad)
        np.testing.assert_array_equal(ref_param.data, out_of_core.master_weights("w"))


# -- the bounded-staleness queue (Hypothesis) ---------------------------------------


@st.composite
def push_schedules(draw):
    """Per-step pushes: a list of steps, each a list of (name, importance)."""
    n_steps = draw(st.integers(min_value=1, max_value=6))
    names = ("a", "b", "c", "d", "e")
    schedule = []
    for _ in range(n_steps):
        active = draw(st.lists(st.sampled_from(names), unique=True, max_size=5))
        schedule.append(
            [(name, draw(st.floats(0, 10, allow_nan=False))) for name in active]
        )
    return schedule


@given(
    schedule=push_schedules(),
    stale_k=st.integers(min_value=0, max_value=3),
    critical_frac=st.floats(min_value=0.0, max_value=0.9),
)
@settings(max_examples=200, deadline=None)
def test_bounded_staleness_invariant(schedule, stale_k, critical_frac):
    """No gradient applied > K steps stale; none lost; per-name FIFO."""
    queue = BoundedStalenessQueue(stale_k, critical_frac)
    pushed: list[tuple[str, int]] = []
    applied: list[tuple[str, int, int]] = []  # (name, produced, applied)
    for step, grads in enumerate(schedule, start=1):
        for name, importance in grads:
            queue.push(name, object(), step, importance)
            pushed.append((name, step))
        for item in queue.collect(step):
            applied.append((item.name, item.produced_step, step))
            assert step - item.produced_step <= stale_k
    final_step = len(schedule)
    for item in queue.flush():
        applied.append((item.name, item.produced_step, final_step))
        # flush items were never forced, so they are within the bound too
        assert final_step - item.produced_step <= stale_k
    # Permutation: every push applied exactly once, nothing invented.
    assert sorted(pushed) == sorted((n, p) for n, p, _a in applied)
    # Per-name FIFO: a parameter's Adam state sees grads in production order.
    by_name: dict[str, list[int]] = {}
    for name, produced, _at in applied:
        by_name.setdefault(name, []).append(produced)
    for produced_steps in by_name.values():
        assert produced_steps == sorted(produced_steps)


@given(schedule=push_schedules(), critical_frac=st.floats(0.0, 0.9))
@settings(max_examples=100, deadline=None)
def test_k0_collect_is_same_step(schedule, critical_frac):
    """stale_k=0 forces every gradient to apply in its producing step."""
    queue = BoundedStalenessQueue(0, critical_frac)
    for step, grads in enumerate(schedule, start=1):
        for name, importance in grads:
            queue.push(name, object(), step, importance)
        collected = queue.collect(step)
        assert sorted(item.name for item in collected) == sorted(n for n, _ in grads)
        assert len(queue) == 0


def test_queue_orders_by_importance():
    queue = BoundedStalenessQueue(0, 0.0)
    queue.push("small", object(), 1, 0.1)
    queue.push("large", object(), 1, 5.0)
    queue.push("mid", object(), 1, 1.0)
    assert [i.name for i in queue.collect(1)] == ["large", "mid", "small"]


def test_queue_validation():
    with pytest.raises(OptimizerError):
        BoundedStalenessQueue(-1)
    with pytest.raises(OptimizerError):
        BoundedStalenessQueue(0, 1.0)


def test_gradient_importance():
    assert gradient_importance(np.array([1.0, -3.0])) == pytest.approx(2.0)
    assert gradient_importance(np.array([])) == 0.0


# -- runtime optimizer modes ---------------------------------------------------------


def train_mode(mode: str, steps: int = 4, seed: int = 0, **kwargs):
    data_rng = np.random.default_rng(seed)
    with ratel_init(
        gpu_capacity=GB,
        host_capacity=GB,
        nvme_capacity=4 * GB,
        optimizer_mode=mode,
        **kwargs,
    ):
        model = GPTModel(23, 16, 2, 2, 8, np.random.default_rng(seed + 1))
        runtime = ratel_hook(model)
        RatelOptimizer(model, runtime, lr=1e-2)
        loss_mod = CrossEntropyLoss()
        losses = []
        for _ in range(steps):
            x = data_rng.integers(0, 23, size=(2, 8))
            y = data_rng.integers(0, 23, size=(2, 8))
            losses.append(runtime.train_step(lambda: loss_mod(model(x), y)))
        flushed = runtime.flush_pending()
        params = {name: p.data.copy() for name, p in model.named_parameters()}
        return losses, params, list(runtime.staleness_log), flushed


class TestRuntimeModes:
    @pytest.fixture(scope="class")
    def sync(self):
        return train_mode("sync")

    def test_async_k0_bit_identical_to_sync(self, sync):
        losses, params, log, _flushed = train_mode("async", stale_k=0)
        assert losses == sync[0]
        for name, data in sync[1].items():
            np.testing.assert_array_equal(params[name], data)
        assert all(applied == produced for _n, produced, applied in log)

    def test_overlap_bit_identical_to_sync(self, sync):
        losses, params, log, _flushed = train_mode("overlap")
        assert losses == sync[0]
        for name, data in sync[1].items():
            np.testing.assert_array_equal(params[name], data)
        # Updates land one schedule slot later (the next forward) but
        # always before the parameter's next read — zero value staleness.
        assert log and all(applied - produced <= 1 for _n, produced, applied in log)

    def test_async_k2_diverges_within_bound(self, sync):
        losses, _params, log, flushed = train_mode(
            "async", stale_k=2, critical_frac=0.25
        )
        assert losses != sync[0]  # staleness has a measurable loss cost
        assert losses[0] == sync[0][0]  # nothing is stale on step one
        assert max(applied - produced for _n, produced, applied in log) <= 2
        assert flushed > 0  # tail gradients drained, none lost

    def test_nothing_lost_across_modes(self, sync):
        """Every parameter gets exactly `steps` updates in every mode."""
        for mode, kwargs in (
            ("async", {"stale_k": 2, "critical_frac": 0.5}),
            ("overlap", {}),
        ):
            _losses, _params, log, flushed = train_mode(mode, **kwargs)
            counts: dict[str, int] = {}
            for name, _p, _a in log:
                counts[name] = counts.get(name, 0) + 1
            assert set(counts.values()) == {4}

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            train_mode("turbo")
        with pytest.raises(ValueError):
            train_mode("sync", stale_k=2)
        with pytest.raises(ValueError):
            train_mode("overlap", critical_frac=0.5)


@given(seed=st.integers(0, 2**16), stale_k=st.integers(0, 0))
@settings(max_examples=5, deadline=None)
def test_property_k0_async_identity(seed, stale_k):
    """K=0 async is bit-identical to sync for arbitrary data streams."""
    sync_losses, sync_params, _log, _f = train_mode("sync", steps=3, seed=seed)
    async_losses, async_params, _log2, _f2 = train_mode(
        "async", steps=3, seed=seed, stale_k=stale_k
    )
    assert sync_losses == async_losses
    for name, data in sync_params.items():
        np.testing.assert_array_equal(async_params[name], data)


def test_session_default_mode_scoping():
    from repro.session import Session, default_optimizer_mode

    assert default_optimizer_mode() == "sync"
    with Session(optimizer_mode="overlap"):
        assert default_optimizer_mode() == "overlap"
        with ratel_init(gpu_capacity=GB, host_capacity=GB, nvme_capacity=GB) as ctx:
            assert ctx.optimizer_mode == "overlap"
    assert default_optimizer_mode() == "sync"
