"""Tests for the neural-network modules of the functional runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import (
    CrossEntropyLoss,
    Embedding,
    GPTModel,
    LayerNorm,
    Linear,
    MLP,
    MSELoss,
    Module,
    MultiHeadAttention,
    Tensor,
    TransformerBlock,
)


class TestModuleSystem:
    def test_parameters_discovered_recursively(self, rng):
        model = GPTModel(11, 8, 2, 2, 4, rng)
        names = [name for name, _p in model.named_parameters()]
        assert "token_emb.weight" in names
        assert "block0.attn.qkv.weight" in names
        assert "block1.mlp.fc2.bias" in names
        assert "head.weight" in names
        assert len(names) == len(set(names))

    def test_n_params_matches_formula(self, rng):
        dim, vocab, layers, seq = 8, 11, 2, 4
        model = GPTModel(vocab, dim, layers, 2, seq, rng)
        block = 12 * dim * dim + 13 * dim  # linears, biases, 2 LayerNorms
        expected = (
            vocab * dim  # token embedding
            + seq * dim  # positions
            + layers * block
            + 2 * dim  # final LN
            + dim * vocab + vocab  # head
        )
        assert model.n_params() == expected

    def test_forward_hooks_fire(self, rng):
        layer = Linear(4, 3, rng)
        events = []
        layer.register_forward_pre_hook(lambda mod, inp: events.append("pre"))
        layer.register_forward_hook(lambda mod, inp, out: events.append("post"))
        layer(Tensor(np.ones((2, 4), dtype=np.float32)))
        assert events == ["pre", "post"]

    def test_zero_grad_clears_all(self, rng):
        model = GPTModel(11, 8, 1, 2, 4, rng)
        ids = np.zeros((1, 4), dtype=int)
        model(ids).sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestLayers:
    def test_linear_shapes_and_math(self, rng):
        layer = Linear(4, 3, rng)
        x = rng.normal(size=(2, 4)).astype(np.float32)
        out = layer(Tensor(x))
        np.testing.assert_allclose(
            out.data, x @ layer.weight.data + layer.bias.data, rtol=1e-5
        )

    def test_layernorm_normalizes(self, rng):
        layer = LayerNorm(16)
        x = Tensor(rng.normal(2.0, 3.0, size=(4, 16)).astype(np.float32))
        out = layer(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_embedding_gathers_rows(self, rng):
        emb = Embedding(10, 4, rng)
        ids = np.array([[1, 3], [3, 0]])
        out = emb(ids)
        np.testing.assert_allclose(out.data, emb.weight.data[ids])

    def test_attention_is_causal(self, rng):
        attn = MultiHeadAttention(8, 2, rng)
        x = rng.normal(size=(1, 6, 8)).astype(np.float32)
        base = attn(Tensor(x)).data
        # Perturbing a future position must not change earlier outputs.
        perturbed = x.copy()
        perturbed[0, 5] += 10.0
        out = attn(Tensor(perturbed)).data
        np.testing.assert_allclose(out[0, :5], base[0, :5], atol=1e-4)
        assert not np.allclose(out[0, 5], base[0, 5])

    def test_attention_rejects_indivisible_heads(self, rng):
        with pytest.raises(ValueError):
            MultiHeadAttention(7, 2, rng)

    def test_mlp_expands_by_four(self, rng):
        mlp = MLP(8, 4, rng)
        assert mlp.fc1.weight.shape == (8, 32)
        assert mlp.fc2.weight.shape == (32, 8)

    def test_block_preserves_shape(self, rng):
        block = TransformerBlock(8, 2, rng)
        x = Tensor(rng.normal(size=(2, 4, 8)).astype(np.float32))
        assert block(x).shape == (2, 4, 8)

    def test_gpt_produces_logits(self, rng):
        model = GPTModel(11, 8, 2, 2, 4, rng)
        logits = model(np.zeros((3, 4), dtype=int))
        assert logits.shape == (3, 4, 11)


class TestLosses:
    def test_mse_value(self):
        loss = MSELoss()
        a = Tensor(np.array([1.0, 2.0], dtype=np.float32))
        b = Tensor(np.array([0.0, 0.0], dtype=np.float32))
        assert float(loss(a, b).data) == pytest.approx(2.5)

    def test_cross_entropy_uniform(self, rng):
        """Uniform logits => loss = log(V)."""
        loss = CrossEntropyLoss()
        vocab = 7
        logits = Tensor(np.zeros((2, 3, vocab), dtype=np.float32), requires_grad=True)
        targets = rng.integers(0, vocab, size=(2, 3))
        value = loss(logits, targets)
        assert float(value.data) == pytest.approx(np.log(vocab), rel=1e-5)

    def test_cross_entropy_decreases_under_gradient_step(self, rng):
        loss_fn = CrossEntropyLoss()
        vocab = 5
        logits = Tensor(rng.normal(size=(2, 3, vocab)).astype(np.float32), requires_grad=True)
        targets = rng.integers(0, vocab, size=(2, 3))
        first = loss_fn(logits, targets)
        first.backward()
        stepped = Tensor(logits.data - 1.0 * logits.grad, requires_grad=True)
        second = loss_fn(stepped, targets)
        assert float(second.data) < float(first.data)

    def test_training_reduces_loss(self, rng):
        """A few SGD steps on a tiny GPT must fit a repeated batch."""
        model = GPTModel(13, 16, 2, 2, 8, rng)
        loss_fn = CrossEntropyLoss()
        ids = rng.integers(0, 13, size=(4, 8))
        targets = np.roll(ids, -1, axis=1)
        losses = []
        for _step in range(12):
            model.zero_grad()
            loss = loss_fn(model(ids), targets)
            loss.backward()
            for param in model.parameters():
                param.data -= 0.5 * param.grad
            losses.append(float(loss.data))
        assert losses[-1] < 0.5 * losses[0]


class TestStateDict:
    def test_roundtrip(self, rng):
        a = GPTModel(11, 8, 2, 2, 4, np.random.default_rng(1))
        b = GPTModel(11, 8, 2, 2, 4, np.random.default_rng(2))
        b.load_state_dict(a.state_dict())
        for (name, pa), (_n, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_is_a_copy(self, rng):
        model = GPTModel(11, 8, 1, 2, 4, rng)
        state = model.state_dict()
        state["token_emb.weight"][:] = 0.0
        assert np.abs(model.token_emb.weight.data).sum() > 0

    def test_mismatched_names_rejected(self, rng):
        a = GPTModel(11, 8, 1, 2, 4, rng)
        b = GPTModel(11, 8, 2, 2, 4, rng)
        with pytest.raises(ValueError, match="mismatch"):
            b.load_state_dict(a.state_dict())

    def test_mismatched_shape_rejected(self, rng):
        model = GPTModel(11, 8, 1, 2, 4, rng)
        state = model.state_dict()
        state["token_emb.weight"] = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError, match="shape"):
            model.load_state_dict(state)
