"""The hardened planner service (repro.serve.service + .admission + .http).

Covers the request pipeline end to end with a stub backend and an
injected clock: validation, admission (429 vs 503 with honest
Retry-After), the breaker-driven degradation ladder, write-ahead
journal recovery (replay without double-run), the stats surface, and
an HTTP round trip over an ephemeral port.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    AdmissionController,
    PlannerService,
    ServiceConfig,
    WhatIfQuery,
    make_server,
    start_in_thread,
)
from repro.serve.journal import RequestJournal
from repro.serve.service import ServeError, analytic_estimate


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def ok_backend(query, cancel):
    return {
        "feasible": True,
        "metrics": {"iteration_time": 2.0, "tokens_per_s": 1000.0 / query.batch_size},
    }


def crash_backend(query, cancel):
    raise RuntimeError("injected backend crash")


def config_for(tmp_path, **overrides):
    overrides.setdefault("rate", 100.0)
    overrides.setdefault("burst", 50.0)
    overrides.setdefault("retry_attempts", 1)
    overrides.setdefault("cache_dir", str(tmp_path / "cache"))
    overrides.setdefault("journal_path", str(tmp_path / "journal.jsonl"))
    return ServiceConfig(**overrides)


@pytest.fixture
def clock():
    return FakeClock()


def make_service(tmp_path, clock, backend=ok_backend, **overrides):
    return PlannerService(
        config_for(tmp_path, **overrides),
        backend=backend,
        clock=clock,
        sleep=lambda _: None,
    )


class TestWhatIfQuery:
    def test_round_trip_and_defaults(self):
        query = WhatIfQuery.from_payload({"model": "13B", "batch_size": 8})
        assert query.policy == "ratel"
        assert query.gpu == "4090"
        again = WhatIfQuery.from_payload(query.to_payload())
        assert again == query
        assert query.key() == again.key()

    @pytest.mark.parametrize(
        "payload",
        [
            {"batch_size": 8},
            {"model": "9000B", "batch_size": 8},
            {"model": "13B", "batch_size": 0},
            {"model": "13B", "batch_size": 8, "policy": "zeus"},
            {"model": "13B", "batch_size": 8, "gpu": "1080"},
            {"model": "13B", "batch_size": 8, "flux_capacitor": 1},
            {"model": "13B", "batch_size": 8, "deadline_s": -1},
        ],
    )
    def test_malformed_queries_rejected(self, payload):
        with pytest.raises(ServeError):
            WhatIfQuery.from_payload(payload)

    def test_analytic_estimate_is_positive(self):
        metrics = analytic_estimate(WhatIfQuery(model="13B", batch_size=8))
        assert metrics["iteration_time"] > 0
        assert metrics["tokens_per_s"] > 0


class TestAdmission:
    def test_queue_full_sheds_503_and_keeps_the_token(self, clock):
        admission = AdmissionController(
            rate=1.0, burst=1.0, max_queue=2, queue_wait_hint_s=3.0, clock=clock
        )
        decision = admission.admit(queue_depth=2)
        assert (decision.admitted, decision.status) == (False, 503)
        assert decision.retry_after_s == pytest.approx(3.0)
        # The 503 never consumed the rate token: the next paced call passes.
        assert admission.admit(queue_depth=0).admitted
        assert (admission.shed_depth, admission.shed_rate) == (1, 0)

    def test_rate_exhaustion_sheds_429_with_honest_retry_after(self, clock):
        admission = AdmissionController(rate=2.0, burst=1.0, max_queue=8, clock=clock)
        assert admission.admit(0).admitted
        decision = admission.admit(0)
        assert (decision.admitted, decision.status) == (False, 429)
        assert decision.retry_after_s == pytest.approx(0.5)  # 1 token at 2/s
        clock.advance(0.5)
        assert admission.admit(0).admitted


class TestServicePipeline:
    def test_first_answer_simulates_then_index_serves(self, tmp_path, clock):
        service = make_service(tmp_path, clock)
        first = service.handle({"model": "6B", "batch_size": 4})
        assert (first.status, first.rung, first.source) == (200, "exact", "sim")
        assert first.feasible is True
        second = service.handle({"model": "6B", "batch_size": 4})
        assert (second.status, second.rung, second.source) == (200, "exact", "ledger")
        assert service.cache.computes == 1
        service.close()

    def test_malformed_payload_is_a_400_not_an_exception(self, tmp_path, clock):
        service = make_service(tmp_path, clock)
        response = service.handle({"model": "13B"})
        assert response.status == 400
        assert "batch_size" in response.detail
        service.close()

    def test_rate_shed_is_429_before_any_journal_write(self, tmp_path, clock):
        service = make_service(tmp_path, clock, rate=10.0, burst=1.0)
        assert service.handle({"model": "6B", "batch_size": 4}).status == 200
        shed = service.handle({"model": "6B", "batch_size": 4})
        assert (shed.status, shed.source) == (429, "admission")
        assert shed.retry_after_s > 0
        accounting = RequestJournal(service.config.journal_path).fold()
        assert len(accounting.accepted) == 1  # the shed request never landed
        service.close()

    def test_breaker_opens_then_probe_restores_exact(self, tmp_path, clock):
        backend = {"mode": "crash"}

        def flaky(query, cancel):
            if backend["mode"] == "crash":
                return crash_backend(query, cancel)
            return ok_backend(query, cancel)

        service = make_service(
            tmp_path, clock, backend=flaky,
            breaker_threshold=2, breaker_cooldown_s=5.0,
        )
        # Crashing backend: every answer degrades to analytic but stays 200.
        for _ in range(2):
            response = service.handle({"model": "6B", "batch_size": 4})
            assert (response.status, response.rung) == (200, "analytic")
        assert service.breaker.state == "open"
        # While open the backend is never touched: still analytic.
        calls_before = service.cache.computes
        response = service.handle({"model": "6B", "batch_size": 4})
        assert (response.status, response.rung) == (200, "analytic")
        assert service.cache.computes == calls_before
        # Cooldown + healthy backend: the half-open probe restores exact.
        backend["mode"] = "ok"
        clock.advance(5.0)
        probe = service.handle({"model": "6B", "batch_size": 4})
        assert (probe.status, probe.rung, probe.source) == (200, "exact", "sim")
        assert service.breaker.state == "closed"
        assert not service.ladder.degraded
        assert service.ladder.episode >= 1
        service.close()

    def test_stats_snapshot_shape(self, tmp_path, clock):
        service = make_service(tmp_path, clock)
        service.handle({"model": "6B", "batch_size": 4})
        stats = service.stats()
        assert stats["breaker"] == "closed"
        assert stats["ladder_floor"] == "exact"
        assert stats["indexed_answers"] == 1
        assert stats["cache"]["computes"] == 1
        assert stats["inflight"] == 0
        service.close()


class TestRecovery:
    def test_orphan_replays_against_cache_without_double_run(self, tmp_path, clock):
        service = make_service(tmp_path, clock)
        query = WhatIfQuery(model="6B", batch_size=4)
        answer = {"feasible": True, "metrics": {"iteration_time": 2.0}}
        service.cache.put(query.key(), answer)
        # Accepted before the crash, never terminated: an orphan.
        service.journal.accepted("orphan-1", query.to_payload(), query.key())
        service.close()

        def never(query, cancel):
            raise AssertionError("replay must hit the cache, not the backend")

        restarted = make_service(tmp_path, clock, backend=never)
        assert restarted.recover() == 1
        accounting = RequestJournal(restarted.config.journal_path).fold()
        assert accounting.orphans == []
        assert "orphan-1" in accounting.done
        assert accounting.duplicate_terminals == 0
        restarted.close()

    def test_torn_journal_tail_repaired_before_append(self, tmp_path, clock):
        service = make_service(tmp_path, clock)
        service.handle({"model": "6B", "batch_size": 4})
        service.close()
        with open(str(tmp_path / "journal.jsonl"), "a", encoding="utf-8") as handle:
            handle.write('{"rec": "accepted", "request_id": "torn')  # no newline
        restarted = make_service(tmp_path, clock)
        restarted.recover()
        assert restarted.journal.repaired_bytes > 0
        accounting = RequestJournal(restarted.config.journal_path).fold()
        assert accounting.orphans == []
        restarted.close()

    def test_unreplayable_orphan_is_marked_failed(self, tmp_path, clock):
        service = make_service(tmp_path, clock)
        service.journal.accepted("orphan-bad", {"model": "9000B"}, "k")
        service.close()
        restarted = make_service(tmp_path, clock)
        assert restarted.recover() == 0
        accounting = RequestJournal(restarted.config.journal_path).fold()
        assert "orphan-bad" in accounting.failed
        restarted.close()


class TestHTTP:
    @pytest.fixture
    def server(self, tmp_path):
        service = PlannerService(
            config_for(tmp_path, rate=1000.0, burst=100.0), backend=ok_backend
        )
        server = make_server(service, port=0)
        start_in_thread(server)
        yield server
        server.shutdown()
        server.shutdown_service()

    def _url(self, server, path):
        host, port = server.server_address[:2]
        return f"http://{host}:{port}{path}"

    def _get(self, server, path):
        with urllib.request.urlopen(self._url(server, path)) as response:
            return response.status, json.loads(response.read() or b"{}")

    def _post(self, server, path, payload):
        request = urllib.request.Request(
            self._url(server, path),
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request) as response:
                return response.status, json.loads(response.read()), response.headers
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read()), error.headers

    def test_whatif_round_trip(self, server):
        status, body, _ = self._post(
            server, "/v1/whatif", {"model": "6B", "batch_size": 4}
        )
        assert status == 200
        assert body["rung"] == "exact"
        assert body["feasible"] is True
        assert body["metrics"]["iteration_time"] == 2.0

    def test_healthz_and_stats(self, server):
        status, body = self._get(server, "/healthz")
        assert (status, body["status"], body["breaker"]) == (200, "ok", "closed")
        status, stats = self._get(server, "/v1/stats")
        assert status == 200
        assert "cache" in stats

    def test_metrics_exposition(self, server):
        self._post(server, "/v1/whatif", {"model": "6B", "batch_size": 4})
        with urllib.request.urlopen(self._url(server, "/metrics")) as response:
            text = response.read().decode()
            content_type = response.headers["Content-Type"]
        assert "requests_accepted_total" in text
        # Prometheus scrapers key on the exposition-format version.
        assert content_type == "text/plain; version=0.0.4"

    def test_metrics_parse_under_exposition_grammar(self, server):
        # Every line of /metrics must be a comment, a # TYPE header, or a
        # sample `name{labels} value` — and histogram buckets cumulative.
        import re

        self._post(server, "/v1/whatif", {"model": "6B", "batch_size": 4})
        with urllib.request.urlopen(self._url(server, "/metrics")) as response:
            text = response.read().decode()
        name = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
        label = rf'{name}="(?:[^"\\]|\\["\\n])*"'
        sample = re.compile(rf"^{name}(?:\{{{label}(?:,{label})*\}})? -?[0-9.e+\-]+$|^{name}(?:\{{.*\}})? \+Inf$")
        typed = re.compile(rf"^# TYPE {name} (counter|gauge|histogram)$")
        buckets: dict[str, list[float]] = {}
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("#"):
                assert typed.match(line) or line.startswith("# HELP"), line
                continue
            assert sample.match(line), f"not exposition-shaped: {line!r}"
            match = re.match(rf'^({name})_bucket\{{.*le="([^"]+)".*\}} ([0-9.e+\-]+|\+?Inf)?$', line)
            if match:
                buckets.setdefault(match.group(1), []).append(
                    float(line.rsplit(" ", 1)[1])
                )
        assert buckets, "no histogram buckets in /metrics"
        for series, counts in buckets.items():
            assert counts == sorted(counts), f"{series} buckets not cumulative"

    def test_validation_error_is_400(self, server):
        status, body, _ = self._post(server, "/v1/whatif", {"model": "13B"})
        assert status == 400
        assert "batch_size" in body["detail"]

    def test_unknown_path_is_404(self, server):
        status, _, _ = self._post(server, "/v1/nope", {})
        assert status == 404

    def test_shed_carries_retry_after_header(self, tmp_path):
        service = PlannerService(
            config_for(tmp_path, rate=0.001, burst=1.0), backend=ok_backend
        )
        server = make_server(service, port=0)
        start_in_thread(server)
        try:
            assert self._post(
                server, "/v1/whatif", {"model": "6B", "batch_size": 4}
            )[0] == 200
            status, body, headers = self._post(
                server, "/v1/whatif", {"model": "6B", "batch_size": 4}
            )
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert body["detail"] == "rate limit exceeded"
        finally:
            server.shutdown()
            server.shutdown_service()


class TestConcurrentService:
    def test_racing_requests_compute_the_key_once(self, tmp_path):
        entered = threading.Event()

        def counted(query, cancel):
            entered.set()
            return ok_backend(query, cancel)

        service = PlannerService(
            config_for(tmp_path, rate=1000.0, burst=100.0, workers=4, max_queue=32),
            backend=counted,
        )
        results = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def fire():
            barrier.wait()
            response = service.handle({"model": "6B", "batch_size": 4})
            with lock:
                results.append(response)

        threads = [threading.Thread(target=fire) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(r.status == 200 for r in results)
        assert all(r.rung == "exact" for r in results)
        assert service.cache.computes == 1, "same key simulated more than once"
        service.close()
