"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware import EVALUATION_SERVER, GiB, evaluation_server
from repro.models import llm, profile_model


@pytest.fixture
def server():
    """The paper's evaluation server (4090, 768 GB, 12 SSDs)."""
    return EVALUATION_SERVER


@pytest.fixture
def server_256gb():
    """The headline configuration: 256 GB of main memory."""
    return evaluation_server(main_memory_bytes=256 * GiB)


@pytest.fixture
def profile_13b_bs32():
    """The paper's workhorse workload: 13B model at batch 32."""
    return profile_model(llm("13B"), 32)


@pytest.fixture
def rng():
    """Deterministic NumPy generator for runtime tests."""
    return np.random.default_rng(1234)
